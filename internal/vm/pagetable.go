package vm

import "fmt"

// Page-table geometry: x86-64 4-level radix. Each level indexes 9 bits of
// the virtual address; leaves may appear at the PT (4K), PD (2M), or PDPT
// (1G) levels.
const (
	ptLevels     = 4
	ptFanout     = 512
	ptIndexBits  = 9
	ptIndexMask  = ptFanout - 1
	pteBytes     = 8
	vaLevelShift = 12 // level-0 (PT) indexing starts above the 4K offset
)

// levelShift returns the VA shift of the index for the given level, where
// level 3 is the root (PML4) and level 0 is the leaf PT.
func levelShift(level int) uint {
	return uint(vaLevelShift + ptIndexBits*level)
}

// levelIndex extracts the radix index of va at the given level.
func levelIndex(va VirtAddr, level int) int {
	return int(uint64(va)>>levelShift(level)) & ptIndexMask
}

// pte is an in-memory page table entry, packed like hardware PTEs so a
// fully materialized table page costs 4 KiB: bit 0 = present, bit 1 =
// leaf, bits 2+ = PFN.
type pte uint64

const (
	ptePresent  pte = 1 << 0
	pteLeaf     pte = 1 << 1
	ptePFNShift     = 2
)

func (e pte) present() bool { return e&ptePresent != 0 }
func (e pte) leaf() bool    { return e&pteLeaf != 0 }
func (e pte) pfn() uint64   { return uint64(e) >> ptePFNShift }

func makeLeafPTE(pfn uint64) pte { return pte(pfn<<ptePFNShift) | ptePresent | pteLeaf }

// ptNode is one page of a page table, stored adaptively. Scatter-heavy
// workloads materialize hundreds of thousands of leaf PT pages holding
// only a handful of present entries each; a full 512-entry array per
// node made page tables the dominant allocation in the whole simulator
// (gigabytes per sweep, most of it zeroes). A node therefore starts as
// a small inline (slot, pte) array and upgrades to the full array only
// once it holds more than sparseMax entries — dense interior nodes and
// genuinely hot leaf pages upgrade, the long sparse tail stays at ~128
// bytes. The sparse arrays store only present (non-zero) PTEs, in no
// particular slot order.
//
// Children are identified by arena index rather than pointer, and the
// index array is allocated lazily (leaf PT pages never need one). Index
// 0 is the root, which is never anyone's child, so 0 doubles as "no
// child".
type ptNode struct {
	frame    uint64         // physical frame holding this table page
	full     *[ptFanout]pte // nil while the node is sparse
	children []int32        // nil until the first child is linked; 0 = none
	n        uint16         // sparse entries in use (full == nil)
	sidx     [sparseMax]uint16
	sval     [sparseMax]pte
}

// sparseMax is the inline-entry capacity before a node upgrades to a
// full array. Eight covers cold-run and prefetch clusters on one cache
// line of slot indices.
const sparseMax = 8

// get returns the PTE at slot idx, or 0 when absent.
func (n *ptNode) get(idx int) pte {
	if n.full != nil {
		return n.full[idx]
	}
	for i := 0; i < int(n.n); i++ {
		if n.sidx[i] == uint16(idx) {
			return n.sval[i]
		}
	}
	return 0
}

// set stores e at slot idx. Storing 0 removes the entry. Every non-zero
// pte has the present bit set, so the sparse form never stores zeroes.
func (n *ptNode) set(idx int, e pte) {
	if n.full != nil {
		n.full[idx] = e
		return
	}
	for i := 0; i < int(n.n); i++ {
		if n.sidx[i] == uint16(idx) {
			if e == 0 {
				last := n.n - 1
				n.sidx[i], n.sval[i] = n.sidx[last], n.sval[last]
				n.sidx[last], n.sval[last] = 0, 0
				n.n = last
			} else {
				n.sval[i] = e
			}
			return
		}
	}
	if e == 0 {
		return
	}
	if n.n < sparseMax {
		n.sidx[n.n] = uint16(idx)
		n.sval[n.n] = e
		n.n++
		return
	}
	full := new([ptFanout]pte)
	for i := 0; i < int(n.n); i++ {
		full[n.sidx[i]] = n.sval[i]
	}
	full[idx] = e
	n.full = full
	n.n = 0
	n.sidx = [sparseMax]uint16{}
	n.sval = [sparseMax]pte{}
}

// empty reports whether the node holds no present entries.
func (n *ptNode) empty() bool {
	if n.full == nil {
		return n.n == 0
	}
	for i := range n.full {
		if n.full[i].present() {
			return false
		}
	}
	return true
}

// child returns the arena index of the child at idx, or 0.
func (n *ptNode) child(idx int) int32 {
	if n.children == nil {
		return 0
	}
	return n.children[idx]
}

// setChild links a child node at idx.
func (n *ptNode) setChild(idx int, c int32) {
	if n.children == nil {
		n.children = make([]int32, ptFanout)
	}
	n.children[idx] = c
}

// FrameAlloc hands out physical frames. The zero value allocates from
// frame 1 upward (frame 0 is reserved so a zero PhysAddr is never valid).
type FrameAlloc struct {
	next uint64
}

// NewFrameAlloc returns an allocator whose first frame is start. Distinct
// address spaces are given disjoint ranges by the OS model.
func NewFrameAlloc(start uint64) *FrameAlloc {
	if start == 0 {
		start = 1
	}
	return &FrameAlloc{next: start}
}

// Alloc returns a fresh frame number.
func (a *FrameAlloc) Alloc() uint64 {
	if a.next == 0 {
		a.next = 1
	}
	f := a.next
	a.next++
	return f
}

// Allocated reports how many frames have been handed out.
func (a *FrameAlloc) Allocated(start uint64) uint64 {
	if start == 0 {
		start = 1
	}
	if a.next <= start {
		return 0
	}
	return a.next - start
}

// WalkResult describes a completed page-table walk: the translation and
// the physical address of the PTE read at each level, root first. The
// page-table walker uses those addresses to charge cache-hierarchy
// latency per level.
type WalkResult struct {
	PA       PhysAddr
	Size     PageSize
	Levels   int // number of memory references the walk made
	PTEAddrs [ptLevels]PhysAddr
}

// Arena chunking: nodes are stored in fixed-capacity chunks so growing
// the arena never copies existing nodes (a flat append-doubled slice
// re-copies ~2x the final arena — hundreds of megabytes per run — and
// was measurably slower than per-node allocation). Chunks also keep node
// addresses stable, so traversals may hold *ptNode across addNode.
const (
	ptChunkShift = 10 // 1024 nodes (~128 KiB) per chunk
	ptChunkSize  = 1 << ptChunkShift
	ptChunkMask  = ptChunkSize - 1
)

// PageTable is a 4-level x86-64-style page table. All nodes live in a
// chunked arena; node 0 is the root (PML4).
type PageTable struct {
	chunks [][]ptNode
	count  int32
	alloc  *FrameAlloc
	// frameFn, when set, assigns table-page frames as a pure function of
	// the subtree they cover instead of drawing from the bump allocator:
	// the sharded runtime maps pages from many regions concurrently, and
	// bump numbering would make PTE addresses (and so walk latencies)
	// depend on arrival order. See AddressSpace.SetParallelSafe.
	frameFn func(level int, va VirtAddr) uint64
	// noWalkCache disables the one-entry walk cache, making Walk and
	// Translate pure reads — required for lock-free concurrent walks.
	// Cached and uncached walks return byte-identical WalkResults, so
	// this is host-side only.
	noWalkCache bool
	// mapped counts leaf mappings by size, for accounting.
	mapped [3]uint64

	// One-entry walk cache: the PD node covering the last walked 1G
	// region, plus the two upper-level PTE addresses a walk through it
	// reports. Walks within the same region resume at the PD level.
	// Purely an accelerator — cached walks return byte-identical
	// WalkResults — so any mutation just invalidates it. Node addresses
	// are stable across addNode, making the held pointer safe.
	wcValid  bool
	wcPrefix uint64 // va >> 30
	wcNode   *ptNode
	wcAddrs  [2]PhysAddr
}

// NewPageTable returns an empty table drawing table pages from alloc.
func NewPageTable(alloc *FrameAlloc) *PageTable {
	if alloc == nil {
		alloc = NewFrameAlloc(1)
	}
	pt := &PageTable{alloc: alloc}
	pt.addNode() // index 0: the root
	return pt
}

// node returns the arena node at index i. The address is stable for the
// life of the table.
func (pt *PageTable) node(i int32) *ptNode {
	return &pt.chunks[i>>ptChunkShift][i&ptChunkMask]
}

// addNode appends a fresh table page to the arena and returns its index.
func (pt *PageTable) addNode() int32 {
	i := pt.count
	if int(i>>ptChunkShift) == len(pt.chunks) {
		pt.chunks = append(pt.chunks, make([]ptNode, 0, ptChunkSize))
	}
	ck := &pt.chunks[len(pt.chunks)-1]
	*ck = append(*ck, ptNode{frame: pt.alloc.Alloc()})
	pt.count++
	return i
}

// Clone deep-copies the table into a new arena drawing future table
// pages from alloc (pass the clone of the original allocator to keep
// frame numbering deterministic). Entry arrays are copied wholesale;
// child index arrays are the only per-node allocation beyond the chunks.
func (pt *PageTable) Clone(alloc *FrameAlloc) *PageTable {
	c := &PageTable{
		chunks: make([][]ptNode, len(pt.chunks)),
		count:  pt.count,
		alloc:  alloc,
		mapped: pt.mapped,
	}
	for ci, ck := range pt.chunks {
		nck := make([]ptNode, len(ck), ptChunkSize)
		copy(nck, ck)
		for i := range nck {
			if ch := nck[i].children; ch != nil {
				nck[i].children = append([]int32(nil), ch...)
			}
			if f := nck[i].full; f != nil {
				nf := new([ptFanout]pte)
				*nf = *f
				nck[i].full = nf
			}
		}
		c.chunks[ci] = nck
	}
	// The walk cache is deliberately not cloned: wcNode points into the
	// source arena. The clone starts cold and re-warms on first walk.
	return c
}

// leafLevel returns the radix level at which a page of size s terminates.
func leafLevel(s PageSize) int {
	switch s {
	case Page4K:
		return 0
	case Page2M:
		return 1
	case Page1G:
		return 2
	}
	panic("vm: invalid page size")
}

// Map installs va -> pa at page size s. Both addresses must be aligned to
// s. Mapping over an existing leaf of a different size is an error;
// remapping the same page updates it in place.
func (pt *PageTable) Map(va VirtAddr, pa PhysAddr, s PageSize) error {
	if va.Offset(s) != 0 {
		return fmt.Errorf("vm: Map: va %#x not %s-aligned", uint64(va), s)
	}
	if uint64(pa)&(s.Bytes()-1) != 0 {
		return fmt.Errorf("vm: Map: pa %#x not %s-aligned", uint64(pa), s)
	}
	target := leafLevel(s)
	pt.wcValid = false
	n := pt.node(0)
	for level := ptLevels - 1; level > target; level-- {
		idx := levelIndex(va, level)
		e := n.get(idx)
		if e.present() && e.leaf() {
			return fmt.Errorf("vm: Map: va %#x covered by existing %s leaf at level %d",
				uint64(va), leafSizeAtLevel(level), level)
		}
		ci := n.child(idx)
		if ci == 0 {
			ci = pt.addNode()
			if pt.frameFn != nil {
				// The child covers the prefix of va above level's shift;
				// derive its frame from that prefix so concurrent maps
				// assign it identically regardless of which arrived first.
				pt.node(ci).frame = pt.frameFn(level, va)
			}
			n.setChild(idx, ci)
			n.set(idx, ptePresent)
		}
		n = pt.node(ci)
	}
	idx := levelIndex(va, target)
	e := n.get(idx)
	if e.present() && !e.leaf() {
		return fmt.Errorf("vm: Map: va %#x: %s leaf would overwrite a page-table subtree",
			uint64(va), s)
	}
	if !e.present() {
		pt.mapped[s]++
	}
	n.set(idx, makeLeafPTE(uint64(pa)>>s.Shift()))
	return nil
}

// leafSizeAtLevel maps a radix level to the page size of a leaf there.
func leafSizeAtLevel(level int) PageSize {
	switch level {
	case 0:
		return Page4K
	case 1:
		return Page2M
	case 2:
		return Page1G
	}
	panic("vm: no leaf size at level")
}

// Unmap removes the leaf mapping covering va at exactly size s. It reports
// whether a mapping was removed.
func (pt *PageTable) Unmap(va VirtAddr, s PageSize) bool {
	target := leafLevel(s)
	pt.wcValid = false
	n := pt.node(0)
	for level := ptLevels - 1; level > target; level-- {
		idx := levelIndex(va, level)
		ci := n.child(idx)
		if ci == 0 {
			return false
		}
		n = pt.node(ci)
	}
	idx := levelIndex(va, target)
	e := n.get(idx)
	if !e.present() || !e.leaf() {
		return false
	}
	n.set(idx, 0)
	pt.mapped[s]--
	return true
}

// Walk translates va, returning the full walk trace. ok is false when no
// mapping covers va (a page fault in a real system).
func (pt *PageTable) Walk(va VirtAddr) (WalkResult, bool) {
	var res WalkResult
	var n *ptNode
	startLevel := ptLevels - 1
	if pt.wcValid && uint64(va)>>30 == pt.wcPrefix {
		// Same 1G region as the last walk: the PML4 and PDPT steps
		// repeat verbatim, so replay their recorded PTE addresses and
		// resume the descent at the cached PD node.
		res.PTEAddrs[0] = pt.wcAddrs[0]
		res.PTEAddrs[1] = pt.wcAddrs[1]
		res.Levels = 2
		n = pt.wcNode
		startLevel = 1
	} else {
		n = pt.node(0)
	}
	for level := startLevel; level >= 0; level-- {
		idx := levelIndex(va, level)
		e := n.get(idx)
		res.PTEAddrs[res.Levels] = PhysAddr(n.frame*FrameSize + uint64(idx)*pteBytes)
		res.Levels++
		if !e.present() {
			return res, false
		}
		if e.leaf() {
			size := leafSizeAtLevel(level)
			res.Size = size
			res.PA = PhysAddr(e.pfn()<<size.Shift() | uint64(va.Offset(size)))
			return res, true
		}
		n = pt.node(n.child(idx))
		if level == 2 && !pt.noWalkCache {
			pt.wcValid = true
			pt.wcPrefix = uint64(va) >> 30
			pt.wcNode = n
			pt.wcAddrs[0] = res.PTEAddrs[0]
			pt.wcAddrs[1] = res.PTEAddrs[1]
		}
	}
	return res, false
}

// Translate is a convenience wrapper returning just the physical address.
func (pt *PageTable) Translate(va VirtAddr) (PhysAddr, PageSize, bool) {
	res, ok := pt.Walk(va)
	if !ok {
		return 0, Page4K, false
	}
	return res.PA, res.Size, true
}

// DropEmptyPT removes the leaf-level page-table page covering va when it
// holds no present entries, clearing the parent PD slot so a 2M leaf can
// be installed there. It reports whether a table page was removed. This is
// what an OS does when collapsing base pages into a superpage.
func (pt *PageTable) DropEmptyPT(va VirtAddr) bool {
	pt.wcValid = false
	n := pt.node(0)
	for level := ptLevels - 1; level > 1; level-- {
		idx := levelIndex(va, level)
		ci := n.child(idx)
		if ci == 0 {
			return false
		}
		n = pt.node(ci)
	}
	idx := levelIndex(va, 1)
	ci := n.child(idx)
	if ci == 0 {
		return false
	}
	child := pt.node(ci)
	if !child.empty() {
		return false
	}
	// The dropped node stays in the arena, unreferenced; arenas only
	// grow within a run and promotions are bounded, so the leak is
	// negligible and keeps every other node index stable.
	n.setChild(idx, 0)
	n.set(idx, 0)
	return true
}

// MappedCount reports the number of leaf mappings at size s.
func (pt *PageTable) MappedCount(s PageSize) uint64 { return pt.mapped[s] }
