package vm

import "fmt"

// Page-table geometry: x86-64 4-level radix. Each level indexes 9 bits of
// the virtual address; leaves may appear at the PT (4K), PD (2M), or PDPT
// (1G) levels.
const (
	ptLevels     = 4
	ptFanout     = 512
	ptIndexBits  = 9
	ptIndexMask  = ptFanout - 1
	pteBytes     = 8
	vaLevelShift = 12 // level-0 (PT) indexing starts above the 4K offset
)

// levelShift returns the VA shift of the index for the given level, where
// level 3 is the root (PML4) and level 0 is the leaf PT.
func levelShift(level int) uint {
	return uint(vaLevelShift + ptIndexBits*level)
}

// levelIndex extracts the radix index of va at the given level.
func levelIndex(va VirtAddr, level int) int {
	return int(uint64(va)>>levelShift(level)) & ptIndexMask
}

// pte is an in-memory page table entry, packed like hardware PTEs so a
// fully materialized table page costs 4 KiB: bit 0 = present, bit 1 =
// leaf, bits 2+ = PFN.
type pte uint64

const (
	ptePresent  pte = 1 << 0
	pteLeaf     pte = 1 << 1
	ptePFNShift     = 2
)

func (e pte) present() bool { return e&ptePresent != 0 }
func (e pte) leaf() bool    { return e&pteLeaf != 0 }
func (e pte) pfn() uint64   { return uint64(e) >> ptePFNShift }

func makeLeafPTE(pfn uint64) pte { return pte(pfn<<ptePFNShift) | ptePresent | pteLeaf }

// ptNode is one page of a page table. Children are allocated lazily:
// leaf-level PT pages never allocate the pointer array.
type ptNode struct {
	frame    uint64 // physical frame holding this table page
	entries  [ptFanout]pte
	children []*ptNode // nil until the first child is linked
}

// child returns the child node at idx, or nil.
func (n *ptNode) child(idx int) *ptNode {
	if n.children == nil {
		return nil
	}
	return n.children[idx]
}

// setChild links a child node at idx.
func (n *ptNode) setChild(idx int, c *ptNode) {
	if n.children == nil {
		n.children = make([]*ptNode, ptFanout)
	}
	n.children[idx] = c
}

// FrameAlloc hands out physical frames. The zero value allocates from
// frame 1 upward (frame 0 is reserved so a zero PhysAddr is never valid).
type FrameAlloc struct {
	next uint64
}

// NewFrameAlloc returns an allocator whose first frame is start. Distinct
// address spaces are given disjoint ranges by the OS model.
func NewFrameAlloc(start uint64) *FrameAlloc {
	if start == 0 {
		start = 1
	}
	return &FrameAlloc{next: start}
}

// Alloc returns a fresh frame number.
func (a *FrameAlloc) Alloc() uint64 {
	if a.next == 0 {
		a.next = 1
	}
	f := a.next
	a.next++
	return f
}

// Allocated reports how many frames have been handed out.
func (a *FrameAlloc) Allocated(start uint64) uint64 {
	if start == 0 {
		start = 1
	}
	if a.next <= start {
		return 0
	}
	return a.next - start
}

// WalkResult describes a completed page-table walk: the translation and
// the physical address of the PTE read at each level, root first. The
// page-table walker uses those addresses to charge cache-hierarchy
// latency per level.
type WalkResult struct {
	PA       PhysAddr
	Size     PageSize
	Levels   int // number of memory references the walk made
	PTEAddrs [ptLevels]PhysAddr
}

// PageTable is a 4-level x86-64-style page table.
type PageTable struct {
	root  *ptNode
	alloc *FrameAlloc
	// mapped counts leaf mappings by size, for accounting.
	mapped [3]uint64
}

// NewPageTable returns an empty table drawing table pages from alloc.
func NewPageTable(alloc *FrameAlloc) *PageTable {
	if alloc == nil {
		alloc = NewFrameAlloc(1)
	}
	return &PageTable{
		root:  &ptNode{frame: alloc.Alloc()},
		alloc: alloc,
	}
}

// leafLevel returns the radix level at which a page of size s terminates.
func leafLevel(s PageSize) int {
	switch s {
	case Page4K:
		return 0
	case Page2M:
		return 1
	case Page1G:
		return 2
	}
	panic("vm: invalid page size")
}

// Map installs va -> pa at page size s. Both addresses must be aligned to
// s. Mapping over an existing leaf of a different size is an error;
// remapping the same page updates it in place.
func (pt *PageTable) Map(va VirtAddr, pa PhysAddr, s PageSize) error {
	if va.Offset(s) != 0 {
		return fmt.Errorf("vm: Map: va %#x not %s-aligned", uint64(va), s)
	}
	if uint64(pa)&(s.Bytes()-1) != 0 {
		return fmt.Errorf("vm: Map: pa %#x not %s-aligned", uint64(pa), s)
	}
	target := leafLevel(s)
	n := pt.root
	for level := ptLevels - 1; level > target; level-- {
		idx := levelIndex(va, level)
		e := &n.entries[idx]
		if e.present() && e.leaf() {
			return fmt.Errorf("vm: Map: va %#x covered by existing %s leaf at level %d",
				uint64(va), leafSizeAtLevel(level), level)
		}
		if n.child(idx) == nil {
			n.setChild(idx, &ptNode{frame: pt.alloc.Alloc()})
			*e = ptePresent
		}
		n = n.child(idx)
	}
	idx := levelIndex(va, target)
	e := &n.entries[idx]
	if e.present() && !e.leaf() {
		return fmt.Errorf("vm: Map: va %#x: %s leaf would overwrite a page-table subtree",
			uint64(va), s)
	}
	if !e.present() {
		pt.mapped[s]++
	}
	*e = makeLeafPTE(uint64(pa) >> s.Shift())
	return nil
}

// leafSizeAtLevel maps a radix level to the page size of a leaf there.
func leafSizeAtLevel(level int) PageSize {
	switch level {
	case 0:
		return Page4K
	case 1:
		return Page2M
	case 2:
		return Page1G
	}
	panic("vm: no leaf size at level")
}

// Unmap removes the leaf mapping covering va at exactly size s. It reports
// whether a mapping was removed.
func (pt *PageTable) Unmap(va VirtAddr, s PageSize) bool {
	target := leafLevel(s)
	n := pt.root
	for level := ptLevels - 1; level > target; level-- {
		idx := levelIndex(va, level)
		if n.child(idx) == nil {
			return false
		}
		n = n.child(idx)
	}
	idx := levelIndex(va, target)
	e := &n.entries[idx]
	if !e.present() || !e.leaf() {
		return false
	}
	*e = 0
	pt.mapped[s]--
	return true
}

// Walk translates va, returning the full walk trace. ok is false when no
// mapping covers va (a page fault in a real system).
func (pt *PageTable) Walk(va VirtAddr) (WalkResult, bool) {
	var res WalkResult
	n := pt.root
	for level := ptLevels - 1; level >= 0; level-- {
		idx := levelIndex(va, level)
		e := n.entries[idx]
		res.PTEAddrs[res.Levels] = PhysAddr(n.frame*FrameSize + uint64(idx)*pteBytes)
		res.Levels++
		if !e.present() {
			return res, false
		}
		if e.leaf() {
			size := leafSizeAtLevel(level)
			res.Size = size
			res.PA = PhysAddr(e.pfn()<<size.Shift() | uint64(va.Offset(size)))
			return res, true
		}
		n = n.child(idx)
	}
	return res, false
}

// Translate is a convenience wrapper returning just the physical address.
func (pt *PageTable) Translate(va VirtAddr) (PhysAddr, PageSize, bool) {
	res, ok := pt.Walk(va)
	if !ok {
		return 0, Page4K, false
	}
	return res.PA, res.Size, true
}

// DropEmptyPT removes the leaf-level page-table page covering va when it
// holds no present entries, clearing the parent PD slot so a 2M leaf can
// be installed there. It reports whether a table page was removed. This is
// what an OS does when collapsing base pages into a superpage.
func (pt *PageTable) DropEmptyPT(va VirtAddr) bool {
	n := pt.root
	for level := ptLevels - 1; level > 1; level-- {
		idx := levelIndex(va, level)
		if n.child(idx) == nil {
			return false
		}
		n = n.child(idx)
	}
	idx := levelIndex(va, 1)
	child := n.child(idx)
	if child == nil {
		return false
	}
	for i := range child.entries {
		if child.entries[i].present() {
			return false
		}
	}
	n.setChild(idx, nil)
	n.entries[idx] = 0
	return true
}

// MappedCount reports the number of leaf mappings at size s.
func (pt *PageTable) MappedCount(s PageSize) uint64 { return pt.mapped[s] }
