package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
)

// TestReportShardMatrix is the end-to-end determinism gate for the
// partitioned parallel engine: the same invocation at every combination
// of intra-run shard count (-shards) and sweep parallelism (-j) must
// write a byte-identical -report JSON. The default matrix covers the
// corner cells; set NOCSTAR_FULL_MATRIX=1 for the full
// shards{1,2,4} x j{1,4} sweep.
//
// The experiment is chosen to exercise both engines at once: fig12 runs
// Private and DistributedMesh configs (partitioned engine) next to
// monolithic and NOCSTAR configs (legacy engine fallback) and divides by
// the memoized private baseline.
func TestReportShardMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the nocstar-exp binary")
	}
	bin := filepath.Join(t.TempDir(), "nocstar-exp")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	type cell struct{ shards, j int }
	cells := []cell{{1, 1}, {2, 4}, {4, 1}}
	if os.Getenv("NOCSTAR_FULL_MATRIX") != "" {
		cells = []cell{{1, 1}, {1, 4}, {2, 1}, {2, 4}, {4, 1}, {4, 4}}
	}

	var golden []byte
	for _, c := range cells {
		report := filepath.Join(t.TempDir(), "report.json")
		cmd := exec.Command(bin,
			"-instr", "2000",
			"-workloads", "gups",
			"-shards", strconv.Itoa(c.shards),
			"-j", strconv.Itoa(c.j),
			"-quiet",
			"-report", report,
			"fig12")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("shards=%d j=%d: %v\n%s", c.shards, c.j, err, out)
		}
		got, err := os.ReadFile(report)
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = got
			continue
		}
		if !bytes.Equal(golden, got) {
			t.Fatalf("shards=%d j=%d report diverges from shards=%d j=%d (%d vs %d bytes)",
				c.shards, c.j, cells[0].shards, cells[0].j, len(got), len(golden))
		}
	}
	if len(golden) == 0 {
		t.Fatal("empty report")
	}
}

// TestReportPlacementMatrix extends the byte-identity gate to the fabric
// layer: the placement experiment — every topology crossed with every
// placement strategy on the distributed organization — must write the
// identical -report JSON at every (-shards, -j) corner. One cell per
// fabric runs end-to-end here, covering the acceptance matrix for the
// pluggable topologies under the partitioned engine.
func TestReportPlacementMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the nocstar-exp binary")
	}
	bin := filepath.Join(t.TempDir(), "nocstar-exp")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	type cell struct{ shards, j int }
	cells := []cell{{1, 1}, {2, 4}, {4, 1}}

	var golden []byte
	for _, c := range cells {
		report := filepath.Join(t.TempDir(), "report.json")
		cmd := exec.Command(bin,
			"-instr", "1500",
			"-cores", "16",
			"-workloads", "gups",
			"-shards", strconv.Itoa(c.shards),
			"-j", strconv.Itoa(c.j),
			"-quiet",
			"-report", report,
			"placement")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("shards=%d j=%d: %v\n%s", c.shards, c.j, err, out)
		}
		got, err := os.ReadFile(report)
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = got
			continue
		}
		if !bytes.Equal(golden, got) {
			t.Fatalf("shards=%d j=%d placement report diverges from shards=%d j=%d (%d vs %d bytes)",
				c.shards, c.j, cells[0].shards, cells[0].j, len(got), len(golden))
		}
	}
	if len(golden) == 0 {
		t.Fatal("empty report")
	}
}
