// Command nocstar-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	nocstar-exp -list
//	nocstar-exp fig12 fig13
//	nocstar-exp -instr 250000 -cores 16,32 fig14
//	nocstar-exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"nocstar/internal/experiments"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available experiments")
		instr     = flag.Uint64("instr", experiments.DefaultOptions().Instr, "instructions per thread")
		seed      = flag.Int64("seed", 1, "simulation seed")
		workloads = flag.String("workloads", "", "comma-separated workload filter")
		combos    = flag.Int("combos", 0, "limit Fig. 18 combinations (0 = all 330)")
		cores     = flag.String("cores", "", "comma-separated core counts for scaling experiments")
		csvDir    = flag.String("csv", "", "directory to write per-experiment CSV data series")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Description)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: nocstar-exp [-list] [flags] <experiment-id>... | all")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
	}

	opts := experiments.Options{Instr: *instr, Seed: *seed, Combos: *combos}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}
	if *cores != "" {
		for _, c := range strings.Split(*cores, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -cores value %q: %v\n", c, err)
				os.Exit(2)
			}
			opts.CoreCounts = append(opts.CoreCounts, n)
		}
	}

	for _, id := range ids {
		e, err := experiments.Lookup(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		start := time.Now()
		res := e.Run(opts)
		fmt.Print(res.Render())
		fmt.Printf("[%s completed in %.1fs]\n\n", e.ID, time.Since(start).Seconds())
		if *csvDir != "" {
			if c, ok := res.(experiments.CSVer); ok {
				path := fmt.Sprintf("%s/%s.csv", *csvDir, e.ID)
				if err := os.WriteFile(path, []byte(c.CSV()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("[wrote %s]\n\n", path)
			}
		}
	}
}
