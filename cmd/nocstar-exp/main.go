// Command nocstar-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	nocstar-exp -list
//	nocstar-exp fig12 fig13
//	nocstar-exp -instr 250000 -cores 16,32 fig14
//	nocstar-exp -j 8 all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"nocstar/internal/experiments"
	"nocstar/internal/metrics"
	"nocstar/internal/noc"
	"nocstar/internal/place"
	"nocstar/internal/runner"
	"nocstar/internal/system"
	"nocstar/internal/workload"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments")
		instr      = flag.Uint64("instr", experiments.DefaultOptions().Instr, "instructions per thread")
		seed       = flag.Int64("seed", 1, "simulation seed")
		workloads  = flag.String("workloads", "", "comma-separated workload filter")
		combos     = flag.Int("combos", 0, "limit Fig. 18 combinations (0 = all 330)")
		cores      = flag.String("cores", "", "comma-separated core counts for scaling experiments")
		csvDir     = flag.String("csv", "", "directory to write per-experiment CSV data series")
		report     = flag.String("report", "", "write a schema-versioned JSON run report to this file")
		trace      = flag.String("trace", "", "write a Chrome trace_event JSON of one representative run to this file (view in chrome://tracing or ui.perfetto.dev)")
		parallel   = flag.Int("j", 0, "simulations to run in parallel (0 = GOMAXPROCS); output is byte-identical at any setting")
		shards     = flag.Int("shards", 0, "worker goroutines inside each shardable run (Private/DistributedMesh orgs; 0 = legacy single-engine); results are byte-identical at any positive setting, and -j defaults to GOMAXPROCS/shards")
		topology   = flag.String("topology", "", "fabric topology for mesh-routed organizations: "+strings.Join(noc.TopologyTokens(), ", "))
		placement  = flag.String("placement", "", "slice-placement strategy for sliced organizations: "+strings.Join(place.Tokens(), ", "))
		placeSeed  = flag.Int64("placement-seed", 0, "seed for the seeded placement strategies (0 = the simulation seed)")
		quiet      = flag.Bool("quiet", false, "suppress the progress line on stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file (use -j 1 for a single-simulation view)")
		memprofile = flag.String("memprofile", "", "write a heap profile (after GC) to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Description)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: nocstar-exp [-list] [flags] <experiment-id>... | all")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
	}

	opts := experiments.Options{Instr: *instr, Seed: *seed, Combos: *combos,
		Parallelism: *parallel, Shards: *shards, PlacementSeed: *placeSeed}
	if *topology != "" {
		kind, ok := noc.ParseTopologyKind(*topology)
		if !ok {
			fmt.Fprintf(os.Stderr, "bad -topology value %q (have %s)\n",
				*topology, strings.Join(noc.TopologyTokens(), ", "))
			os.Exit(2)
		}
		opts.Topology = kind
	}
	if *placement != "" {
		strat, ok := place.ParseStrategy(*placement)
		if !ok {
			fmt.Fprintf(os.Stderr, "bad -placement value %q (have %s)\n",
				*placement, strings.Join(place.Tokens(), ", "))
			os.Exit(2)
		}
		opts.Placement = strat
	}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}
	if *cores != "" {
		for _, c := range strings.Split(*cores, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -cores value %q: %v\n", c, err)
				os.Exit(2)
			}
			opts.CoreCounts = append(opts.CoreCounts, n)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
		}()
	}

	var ran []experiments.RanExperiment
	for _, id := range ids {
		e, err := experiments.Lookup(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		start := time.Now()
		stop := startProgress(e.ID, *quiet)
		res := e.Run(opts)
		stop()
		fmt.Print(res.Render())
		fmt.Printf("[%s completed in %.1fs]\n\n", e.ID, time.Since(start).Seconds())
		if *report != "" {
			ran = append(ran, experiments.RanExperiment{
				ID: e.ID, Description: e.Description, Result: res,
			})
		}
		if *csvDir != "" {
			if c, ok := res.(experiments.CSVer); ok {
				path := filepath.Join(*csvDir, e.ID+".csv")
				writeOutput(path, func(w io.Writer) error {
					_, err := io.WriteString(w, c.CSV())
					return err
				})
				fmt.Printf("[wrote %s]\n\n", path)
			}
		}
	}

	if *report != "" {
		rep := experiments.BuildReport(opts, ran)
		writeOutput(*report, rep.WriteJSON)
		fmt.Printf("[wrote %s]\n", *report)
	}
	if *trace != "" {
		writeTrace(*trace, opts)
		fmt.Printf("[wrote %s]\n", *trace)
	}
}

// writeOutput creates path's directory if needed and writes the file
// through fn, exiting on any error.
func writeOutput(path string, fn func(io.Writer) error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := fn(f); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// traceInstrCap bounds the traced run: traces are for inspecting event
// timelines, not statistics, and a short window keeps the file loadable.
const traceInstrCap = 20_000

// writeTrace performs one representative NOCSTAR run with the event
// tracer attached and writes the Chrome trace_event JSON.
func writeTrace(path string, opts experiments.Options) {
	name := "graph500"
	if len(opts.Workloads) > 0 {
		name = opts.Workloads[0]
	}
	spec, ok := workload.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q for -trace\n", name)
		os.Exit(2)
	}
	cores := 16
	if len(opts.CoreCounts) > 0 {
		cores = opts.CoreCounts[0]
	}
	instr := opts.Instr
	if instr > traceInstrCap {
		instr = traceInstrCap
	}
	cfg := system.Config{
		Org:            system.Nocstar,
		Cores:          cores,
		Apps:           []system.App{{Spec: spec, Threads: cores, HammerSlice: system.HammerNone}},
		InstrPerThread: instr,
		Seed:           opts.Seed,
	}
	tr := metrics.NewTracer(0)
	if _, err := system.RunWithTracer(cfg, tr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if tr.Dropped() > 0 {
		fmt.Fprintf(os.Stderr, "trace window filled: %d events dropped\n", tr.Dropped())
	}
	writeOutput(path, tr.WriteChrome)
}

// startProgress periodically reports the experiment's simulation progress
// (runs completed / submitted so far, and an ETA for the runs already
// queued) on stderr. The returned stop function clears the line.
func startProgress(id string, quiet bool) (stop func()) {
	if quiet {
		return func() {}
	}
	base := runner.Default().Progress()
	begin := time.Now()
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(1 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-done:
				fmt.Fprintf(os.Stderr, "\r\033[K")
				return
			case <-tick.C:
				p := runner.Default().Progress()
				completed := p.Completed - base.Completed
				submitted := p.Submitted - base.Submitted
				deduped := p.Deduped - base.Deduped
				line := fmt.Sprintf("[%s] %d/%d runs", id, completed, submitted)
				if deduped > 0 {
					line += fmt.Sprintf(" (+%d deduped)", deduped)
				}
				elapsed := time.Since(begin)
				line += fmt.Sprintf(", %s elapsed", elapsed.Round(time.Second))
				if completed > 0 && submitted > completed {
					eta := time.Duration(float64(elapsed) / float64(completed) *
						float64(submitted-completed))
					line += fmt.Sprintf(", ETA %s", eta.Round(time.Second))
				}
				fmt.Fprintf(os.Stderr, "\r\033[K%s", line)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
