// Command nocstar-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	nocstar-exp -list
//	nocstar-exp fig12 fig13
//	nocstar-exp -instr 250000 -cores 16,32 fig14
//	nocstar-exp -j 8 all
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"nocstar/internal/experiments"
	"nocstar/internal/runner"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available experiments")
		instr     = flag.Uint64("instr", experiments.DefaultOptions().Instr, "instructions per thread")
		seed      = flag.Int64("seed", 1, "simulation seed")
		workloads = flag.String("workloads", "", "comma-separated workload filter")
		combos    = flag.Int("combos", 0, "limit Fig. 18 combinations (0 = all 330)")
		cores     = flag.String("cores", "", "comma-separated core counts for scaling experiments")
		csvDir    = flag.String("csv", "", "directory to write per-experiment CSV data series")
		parallel   = flag.Int("j", 0, "simulations to run in parallel (0 = GOMAXPROCS); output is byte-identical at any setting")
		quiet      = flag.Bool("quiet", false, "suppress the progress line on stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file (use -j 1 for a single-simulation view)")
		memprofile = flag.String("memprofile", "", "write a heap profile (after GC) to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Description)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: nocstar-exp [-list] [flags] <experiment-id>... | all")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
	}

	opts := experiments.Options{Instr: *instr, Seed: *seed, Combos: *combos, Parallelism: *parallel}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}
	if *cores != "" {
		for _, c := range strings.Split(*cores, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -cores value %q: %v\n", c, err)
				os.Exit(2)
			}
			opts.CoreCounts = append(opts.CoreCounts, n)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
		}()
	}

	for _, id := range ids {
		e, err := experiments.Lookup(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		start := time.Now()
		stop := startProgress(e.ID, *quiet)
		res := e.Run(opts)
		stop()
		fmt.Print(res.Render())
		fmt.Printf("[%s completed in %.1fs]\n\n", e.ID, time.Since(start).Seconds())
		if *csvDir != "" {
			if c, ok := res.(experiments.CSVer); ok {
				path := fmt.Sprintf("%s/%s.csv", *csvDir, e.ID)
				if err := os.WriteFile(path, []byte(c.CSV()), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("[wrote %s]\n\n", path)
			}
		}
	}
}

// startProgress periodically reports the experiment's simulation progress
// (runs completed / submitted so far, and an ETA for the runs already
// queued) on stderr. The returned stop function clears the line.
func startProgress(id string, quiet bool) (stop func()) {
	if quiet {
		return func() {}
	}
	base := runner.Default().Progress()
	begin := time.Now()
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(1 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-done:
				fmt.Fprintf(os.Stderr, "\r\033[K")
				return
			case <-tick.C:
				p := runner.Default().Progress()
				completed := p.Completed - base.Completed
				submitted := p.Submitted - base.Submitted
				deduped := p.Deduped - base.Deduped
				line := fmt.Sprintf("[%s] %d/%d runs", id, completed, submitted)
				if deduped > 0 {
					line += fmt.Sprintf(" (+%d deduped)", deduped)
				}
				elapsed := time.Since(begin)
				line += fmt.Sprintf(", %s elapsed", elapsed.Round(time.Second))
				if completed > 0 && submitted > completed {
					eta := time.Duration(float64(elapsed) / float64(completed) *
						float64(submitted-completed))
					line += fmt.Sprintf(", ETA %s", eta.Round(time.Second))
				}
				fmt.Fprintf(os.Stderr, "\r\033[K%s", line)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
