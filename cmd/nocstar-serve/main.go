// Command nocstar-serve runs the simulator as a long-lived HTTP
// service: clients POST JSON configs to /v1/runs (or whole design-space
// sweeps to /v1/sweeps), poll run status, stream progress and results
// over SSE, and share a content-addressed result cache across requests
// — and, with -store-dir, across restarts and replicas. With -peers the
// node joins a heartbeat-gossip cluster: work shards by rendezvous
// hashing over the live view, finished results replicate to successor
// nodes, and ownership hands off when a member dies.
//
// Usage:
//
//	nocstar-serve -addr :8080 -workers 8 -cache 256
//	nocstar-serve -addr :8080 -store-dir /var/lib/nocstar/results
//	nocstar-serve -addr :8081 -node http://10.0.0.2:8081 \
//	    -peers http://10.0.0.1:8081,http://10.0.0.2:8081
//	nocstar-serve -selftest          # end-to-end smoke against a loopback listener
//	nocstar-serve -selftest-cluster  # three-node membership/handoff/replication smoke
//
// Endpoints:
//
//	POST   /v1/runs             submit a config (optionally ?timeout=30s)
//	POST   /v1/sweeps           submit a config array; results stream back as SSE
//	GET    /v1/runs             list accepted runs
//	GET    /v1/runs/{id}        run status; includes the result when done
//	DELETE /v1/runs/{id}        cancel a queued or running job
//	GET    /v1/runs/{id}/events run state transitions as SSE
//	GET    /v1/cluster          membership view (+ ?hash= ownership preview)
//	GET    /v1/workloads        the built-in workload suite
//	GET    /v1/experiments      the paper experiment registry
//	GET    /healthz             liveness and pool occupancy (503 while draining)
//	GET    /metrics             Prometheus text exposition
//
// The typed Go client for all of the above lives in the public
// `nocstar/client` package; both selftests are written against it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nocstar/client"
	"nocstar/internal/server"
	"nocstar/internal/system"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "bounded submission queue depth (full queue returns 429)")
		cache        = flag.Int("cache", 128, "in-memory result-cache entries, keyed on canonical config hash")
		storeDir     = flag.String("store-dir", "", "persistent content-addressed result store directory (survives restarts; shareable between replicas)")
		storeEntries = flag.Int("store-max-entries", 0, "persistent store entry bound (0 = 4096)")
		storeBytes   = flag.Int64("store-max-bytes", 0, "persistent store payload-byte bound (0 = unbounded)")
		peers        = flag.String("peers", "", "comma-separated seed URLs of cluster members (enables membership, sharding, replication)")
		node         = flag.String("node", "", "this node's own advertised base URL (required with -peers)")
		hbInterval   = flag.Duration("hb-interval", 0, "cluster heartbeat interval (0 = 1s)")
		suspectAfter = flag.Duration("suspect-after", 0, "silence before a peer is suspected (0 = 3x interval)")
		deadAfter    = flag.Duration("dead-after", 0, "silence before a peer is declared dead (0 = 8x interval)")
		replicas     = flag.Int("replicas", 0, "successor nodes each finished result is replicated to (0 = 2, negative disables)")
		budget       = flag.Int("cluster-queue-budget", 0, "cluster-wide queued-leg budget for sweep admission (0 = sum of live queue caps)")
		history      = flag.Int("job-history", 0, "terminal jobs retained in the run registry (0 = 512)")
		maxRun       = flag.Duration("max-run", 0, "wall-clock cap on every run; 0 means uncapped")
		shards       = flag.Int("shards", 0, "worker goroutines inside each shardable run (0 = legacy single-engine)")
		drain        = flag.Duration("drain", time.Minute, "graceful-shutdown drain budget for in-flight runs")
		selftest     = flag.Bool("selftest", false, "run an end-to-end smoke against a loopback listener and exit")
		selfcluster  = flag.Bool("selftest-cluster", false, "run a three-node membership/handoff/replication smoke on loopback listeners and exit")
	)
	flag.Parse()

	opts := server.Options{
		Workers:            *workers,
		QueueDepth:         *queue,
		CacheEntries:       *cache,
		StoreDir:           *storeDir,
		StoreMaxEntries:    *storeEntries,
		StoreMaxBytes:      *storeBytes,
		JobHistory:         *history,
		MaxRunDuration:     *maxRun,
		Shards:             *shards,
		HeartbeatInterval:  *hbInterval,
		SuspectAfter:       *suspectAfter,
		DeadAfter:          *deadAfter,
		Replicas:           *replicas,
		ClusterQueueBudget: *budget,
	}
	if *peers != "" {
		opts.Peers = strings.Split(*peers, ",")
		opts.Node = *node
	}

	if *selftest {
		if err := runSelftest(opts); err != nil {
			fmt.Fprintln(os.Stderr, "selftest FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("selftest PASSED")
		return
	}
	if *selfcluster {
		if err := runClusterSelftest(opts); err != nil {
			fmt.Fprintln(os.Stderr, "cluster selftest FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("cluster selftest PASSED")
		return
	}

	srv, err := server.New(opts)
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("nocstar-serve listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("received %v; draining in-flight runs (budget %v)", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the serve tier before closing the listener: the moment
	// Shutdown starts, /healthz answers 503 "draining" and new
	// submissions are refused, but pollers can still collect results —
	// a load balancer sees the node drain instead of drop.
	drainErr := srv.Shutdown(ctx)
	httpSrv.Shutdown(ctx)
	if drainErr != nil {
		log.Printf("drain incomplete: %v", drainErr)
		os.Exit(1)
	}
	log.Println("drained cleanly")
}

// testNode is one booted loopback server instance used by the selftests.
type testNode struct {
	srv  *server.Server
	http *http.Server
	ln   net.Listener
	base string
	c    *client.Client
}

// boot starts a server over a fresh loopback listener. When ln is nil a
// new one is bound; passing one in lets callers learn addresses before
// constructing peer lists.
func boot(opts server.Options, ln net.Listener) (*testNode, error) {
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
	}
	srv, err := server.New(opts)
	if err != nil {
		ln.Close()
		return nil, err
	}
	n := &testNode{
		srv:  srv,
		http: &http.Server{Handler: srv.Handler()},
		ln:   ln,
		base: "http://" + ln.Addr().String(),
	}
	n.c = client.New(n.base)
	go n.http.Serve(ln)
	return n, nil
}

func (n *testNode) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	n.srv.Shutdown(ctx)
	n.http.Shutdown(ctx)
}

// kill hard-kills the node: the listener closes immediately (peers see
// connection errors, not a graceful drain) and in-flight runs are
// canceled. This is the selftest's stand-in for a crashed member.
func (n *testNode) kill() {
	n.http.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n.srv.Shutdown(ctx)
}

// selftestConfig is a deliberately small run so the smoke finishes in
// about a second.
const selftestConfig = `{
	"schema": 1,
	"org": "nocstar",
	"cores": 8,
	"apps": [{"workload": "gups", "threads": 8}],
	"instr_per_thread": 20000,
	"seed": 1
}`

// selftestConfig2 is a second, distinct point for the sweep smoke.
const selftestConfig2 = `{
	"schema": 1,
	"org": "nocstar",
	"cores": 8,
	"apps": [{"workload": "gups", "threads": 8}],
	"instr_per_thread": 20000,
	"seed": 2
}`

// smokeConfig builds a small distinct config for the cluster smoke's
// seed searches.
func smokeConfig(seed int64) string {
	return fmt.Sprintf(`{
		"schema": 1, "org": "nocstar", "cores": 4,
		"apps": [{"workload": "gups", "threads": 4}],
		"instr_per_thread": 10000, "seed": %d
	}`, seed)
}

// directResult runs cfgJSON in process and returns its marshaled Result
// — the byte-identity reference for everything served over HTTP.
func directResult(cfgJSON string) ([]byte, error) {
	cfg, err := system.UnmarshalConfig([]byte(cfgJSON))
	if err != nil {
		return nil, fmt.Errorf("decoding config: %w", err)
	}
	res, err := system.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("direct run: %w", err)
	}
	return json.Marshal(res)
}

// hashFor computes the canonical config hash client-side, for ownership
// previews against GET /v1/cluster?hash=.
func hashFor(cfgJSON string) (string, error) {
	cfg, err := system.UnmarshalConfig([]byte(cfgJSON))
	if err != nil {
		return "", err
	}
	return cfg.CanonicalHash()
}

// runJSON submits a raw config through the typed client and waits for
// the terminal state.
func runJSON(ctx context.Context, c *client.Client, cfgJSON string) (client.RunStatus, error) {
	st, err := c.SubmitRunJSON(ctx, []byte(cfgJSON))
	if err != nil {
		return client.RunStatus{}, err
	}
	if st.Terminal() {
		return st, nil
	}
	return c.Wait(ctx, st.ID)
}

// runSelftest exercises the service end to end through the public
// typed client over a real loopback listener: submit, wait to
// completion, verify the HTTP result is byte-identical to a direct
// in-process Run, resubmit and verify a cache hit, stream a two-config
// sweep over SSE, then boot a second server over the same store
// directory and verify the result survived the "restart" without
// re-execution. Backs `make serve-smoke`.
func runSelftest(opts server.Options) error {
	if opts.StoreDir == "" {
		dir, err := os.MkdirTemp("", "nocstar-selftest-store-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		opts.StoreDir = dir
	}
	n, err := boot(opts, nil)
	if err != nil {
		return err
	}
	defer n.stop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	want, err := directResult(selftestConfig)
	if err != nil {
		return err
	}

	// Submit and wait to completion.
	st, err := runJSON(ctx, n.c, selftestConfig)
	if err != nil {
		return err
	}
	if st.State != client.StateDone {
		return fmt.Errorf("run ended %s: %s", st.State, st.Error)
	}
	if !bytes.Equal(st.Result, want) {
		return fmt.Errorf("HTTP result differs from direct run (%d vs %d bytes)", len(st.Result), len(want))
	}
	fmt.Println("selftest: HTTP result byte-identical to direct run")

	// Resubmit: must be served from the result cache, byte-identical.
	again, err := runJSON(ctx, n.c, selftestConfig)
	if err != nil {
		return err
	}
	if !again.Cached {
		return fmt.Errorf("resubmit not served from cache (state %q)", again.State)
	}
	if !bytes.Equal(again.Result, want) {
		return fmt.Errorf("cached result differs from direct run")
	}
	fmt.Println("selftest: resubmit served from cache, byte-identical")

	// Sweep: two configs over SSE, one a store hit, one fresh.
	want2, err := directResult(selftestConfig2)
	if err != nil {
		return err
	}
	var results []client.SweepResult
	summary, err := n.c.SweepJSON(ctx, []byte("["+selftestConfig+","+selftestConfig2+"]"),
		func(sr client.SweepResult) error {
			results = append(results, sr)
			return nil
		})
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	if len(results) != 2 || summary.Total != 2 || summary.Done != 2 {
		return fmt.Errorf("sweep: %d results, summary %+v", len(results), summary)
	}
	for _, r := range results {
		ref := want
		if r.Index == 1 {
			ref = want2
		}
		if r.State != client.StateDone || !bytes.Equal(r.Result, ref) {
			return fmt.Errorf("sweep result %d: state %q, %d bytes (want %d)", r.Index, r.State, len(r.Result), len(ref))
		}
	}
	fmt.Println("selftest: sweep streamed both results over SSE, byte-identical")

	// The store directory holds the blobs.
	entries, err := os.ReadDir(opts.StoreDir)
	if err != nil {
		return err
	}
	blobs := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			blobs++
		}
	}
	if blobs < 2 {
		return fmt.Errorf("store dir %s holds %d blobs, want >= 2", opts.StoreDir, blobs)
	}

	// Restart survival: a fresh server over the same store directory
	// serves the result as a cache hit without re-executing.
	n2, err := boot(opts, nil)
	if err != nil {
		return err
	}
	defer n2.stop()
	revived, err := runJSON(ctx, n2.c, selftestConfig)
	if err != nil {
		return err
	}
	if !revived.Cached || !bytes.Equal(revived.Result, want) {
		return fmt.Errorf("restart: cached=%v, bytes equal=%v", revived.Cached, bytes.Equal(revived.Result, want))
	}
	if v, err := n2.c.Metric(ctx, "nocstar_server_runs_executed"); err != nil || v != 0 {
		return fmt.Errorf("restarted server executed %v runs (err %v), want 0", v, err)
	}
	fmt.Println("selftest: result survived restart via persistent store, no re-execution")

	// The read endpoints answer through the typed client.
	if h, err := n.c.Health(ctx); err != nil || h.Status != "ok" {
		return fmt.Errorf("health: %v %+v", err, h)
	}
	if ws, err := n.c.Workloads(ctx); err != nil || len(ws) == 0 {
		return fmt.Errorf("workloads: %v (%d entries)", err, len(ws))
	}
	if exps, err := n.c.Experiments(ctx); err != nil || len(exps) == 0 {
		return fmt.Errorf("experiments: %v (%d entries)", err, len(exps))
	}
	if runs, err := n.c.ListRuns(ctx); err != nil || len(runs) == 0 {
		return fmt.Errorf("runs list: %v (%d entries)", err, len(runs))
	}
	if info, err := n.c.Cluster(ctx, ""); err != nil || len(info.View.Nodes) != 1 {
		return fmt.Errorf("cluster view: %v %+v", err, info)
	}
	fmt.Println("selftest: health, workloads, experiments, runs, cluster all answer via the typed client")
	return nil
}

// waitConverged polls every node's /v1/cluster until all views report
// `want` live members.
func waitConverged(ctx context.Context, nodes []*testNode, want int) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		ok := true
		for _, n := range nodes {
			info, err := n.c.Cluster(ctx, "")
			if err != nil || len(info.View.Live()) != want {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("membership never converged to %d live nodes", want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// ownerOf resolves a config's owner through the ownership preview on
// the given node.
func ownerOf(ctx context.Context, n *testNode, cfgJSON string) (client.ClusterNode, error) {
	h, err := hashFor(cfgJSON)
	if err != nil {
		return client.ClusterNode{}, err
	}
	info, err := n.c.Cluster(ctx, h)
	if err != nil {
		return client.ClusterNode{}, err
	}
	if info.Ownership == nil {
		return client.ClusterNode{}, fmt.Errorf("no ownership preview for %s", h)
	}
	return info.Ownership.Owner, nil
}

// runClusterSelftest boots three in-process nodes as a heartbeat-gossip
// cluster, each with its own store directory, and verifies the
// distributed contracts end to end through the public client:
// membership convergence, exactly-once sharded execution with
// byte-identical serving from every node, result replication to HRW
// successors, and — the headline — a killed owner whose results stay
// resolvable and whose hash range hands off to the survivors. Backs
// `make serve-cluster-smoke`.
func runClusterSelftest(opts server.Options) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	want, err := directResult(selftestConfig)
	if err != nil {
		return err
	}

	// Bind listeners first so the seed list exists before the servers.
	const clusterSize = 3
	lns := make([]net.Listener, clusterSize)
	peers := make([]string, clusterSize)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		lns[i] = ln
		peers[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*testNode, clusterSize)
	for i := range nodes {
		dir, err := os.MkdirTemp("", "nocstar-cluster-store-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		o := opts
		o.StoreDir = dir
		o.Peers = peers
		o.Node = peers[i]
		o.HeartbeatInterval = 50 * time.Millisecond
		o.SuspectAfter = 300 * time.Millisecond
		o.DeadAfter = 1500 * time.Millisecond
		n, err := boot(o, lns[i])
		if err != nil {
			return err
		}
		defer n.stop()
		nodes[i] = n
	}
	if err := waitConverged(ctx, nodes, clusterSize); err != nil {
		return err
	}
	fmt.Printf("cluster selftest: %d nodes converged to one live view\n", clusterSize)

	// Sharding: submitted to two different nodes, the config executes
	// exactly once cluster-wide and serves byte-identically from both.
	for i, n := range nodes[:2] {
		st, err := runJSON(ctx, n.c, selftestConfig)
		if err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
		if st.State != client.StateDone || !bytes.Equal(st.Result, want) {
			return fmt.Errorf("node %d: state %s, %d bytes", i, st.State, len(st.Result))
		}
	}
	total := float64(0)
	for _, n := range nodes {
		v, err := n.c.Metric(ctx, "nocstar_server_runs_executed")
		if err != nil {
			return err
		}
		total += v
	}
	if total != 1 {
		return fmt.Errorf("cluster executed %v runs, want exactly 1", total)
	}
	fmt.Println("cluster selftest: one execution cluster-wide, both entry nodes byte-identical")

	// Kill-owner leg: pick a config owned by a node other than node 0,
	// run it via node 0, wait for the write-behind replicas to land,
	// then hard-kill the owner and verify the survivors still serve the
	// job ID and the hash from their replicated stores — and that a
	// fresh config from the dead node's range executes on a survivor.
	victim := -1
	var victimCfg string
	for seed := int64(100); seed < 400; seed++ {
		cand := smokeConfig(seed)
		owner, err := ownerOf(ctx, nodes[0], cand)
		if err != nil {
			return err
		}
		if owner.Addr != nodes[0].base {
			for i, n := range nodes {
				if n.base == owner.Addr {
					victim, victimCfg = i, cand
				}
			}
			break
		}
	}
	if victim < 0 {
		return fmt.Errorf("no config owned by a non-entry node in 300 seeds")
	}
	victimWant, err := directResult(victimCfg)
	if err != nil {
		return err
	}
	st, err := runJSON(ctx, nodes[0].c, victimCfg)
	if err != nil {
		return fmt.Errorf("victim-owned run: %w", err)
	}
	if st.State != client.StateDone || !bytes.Equal(st.Result, victimWant) {
		return fmt.Errorf("victim-owned run: state %s, %d bytes", st.State, len(st.Result))
	}

	// Replication is write-behind: wait until both successors report a
	// received replica.
	repDeadline := time.Now().Add(15 * time.Second)
	for {
		recv := float64(0)
		for i, n := range nodes {
			if i == victim {
				continue
			}
			v, err := n.c.Metric(ctx, "nocstar_server_replica_received")
			if err != nil {
				return err
			}
			recv += v
		}
		if recv >= 2 {
			break
		}
		if time.Now().After(repDeadline) {
			return fmt.Errorf("replicas never landed on the successors")
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Println("cluster selftest: finished result replicated to both HRW successors")

	nodes[victim].kill()
	survivors := make([]*testNode, 0, clusterSize-1)
	for i, n := range nodes {
		if i != victim {
			survivors = append(survivors, n)
		}
	}

	// The dead owner's job ID and hash stay resolvable on every
	// survivor, byte-identical, without any re-execution.
	for _, n := range survivors {
		got, err := n.c.GetRun(ctx, st.ID)
		if err != nil {
			return fmt.Errorf("post-kill: resolving %s on %s: %w", st.ID, n.base, err)
		}
		if got.State != client.StateDone || !bytes.Equal(got.Result, victimWant) {
			return fmt.Errorf("post-kill: %s served %s with %d bytes", n.base, got.State, len(got.Result))
		}
		hit, err := runJSON(ctx, n.c, victimCfg)
		if err != nil {
			return fmt.Errorf("post-kill resubmit on %s: %w", n.base, err)
		}
		if !hit.Cached || !bytes.Equal(hit.Result, victimWant) {
			return fmt.Errorf("post-kill resubmit on %s: cached=%v", n.base, hit.Cached)
		}
	}
	fmt.Println("cluster selftest: owner killed — survivors serve its job ID and hash from replicas, no re-execution")

	// Ownership handoff: a brand-new config from the dead node's hash
	// range executes on a survivor instead of failing.
	var handoffCfg string
	for seed := int64(400); seed < 900; seed++ {
		cand := smokeConfig(seed)
		owner, err := ownerOf(ctx, survivors[0], cand)
		if err != nil {
			return err
		}
		if owner.Addr == nodes[victim].base {
			handoffCfg = cand
			break
		}
	}
	if handoffCfg == "" {
		// The survivors may already have demoted the victim, in which
		// case every hash now maps to a live node — equally fine; pick
		// any fresh config.
		handoffCfg = smokeConfig(901)
	}
	handoffWant, err := directResult(handoffCfg)
	if err != nil {
		return err
	}
	hst, err := runJSON(ctx, survivors[0].c, handoffCfg)
	if err != nil {
		return fmt.Errorf("handoff run: %w", err)
	}
	if hst.State != client.StateDone || !bytes.Equal(hst.Result, handoffWant) {
		return fmt.Errorf("handoff run: state %s, %d bytes", hst.State, len(hst.Result))
	}
	fmt.Println("cluster selftest: dead owner's hash range handed off — new work executes on survivors")
	return nil
}
