// Command nocstar-serve runs the simulator as a long-lived HTTP
// service: clients POST JSON configs to /v1/runs, poll run status,
// stream progress over SSE, and share a canonical-config result cache
// across requests.
//
// Usage:
//
//	nocstar-serve -addr :8080 -workers 8 -cache 256
//	nocstar-serve -selftest   # end-to-end smoke against a loopback listener
//
// Endpoints:
//
//	POST   /v1/runs             submit a config (optionally ?timeout=30s)
//	GET    /v1/runs             list accepted runs
//	GET    /v1/runs/{id}        run status; includes the result when done
//	DELETE /v1/runs/{id}        cancel a queued or running job
//	GET    /v1/runs/{id}/events run state transitions as SSE
//	GET    /v1/workloads        the built-in workload suite
//	GET    /v1/experiments      the paper experiment registry
//	GET    /healthz             liveness and pool occupancy
//	GET    /metrics             Prometheus text exposition
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nocstar/internal/server"
	"nocstar/internal/system"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "bounded submission queue depth (full queue returns 429)")
		cache    = flag.Int("cache", 128, "LRU result-cache entries, keyed on canonical config hash")
		maxRun   = flag.Duration("max-run", 0, "wall-clock cap on every run; 0 means uncapped")
		shards   = flag.Int("shards", 0, "worker goroutines inside each shardable run (0 = legacy single-engine)")
		drain    = flag.Duration("drain", time.Minute, "graceful-shutdown drain budget for in-flight runs")
		selftest = flag.Bool("selftest", false, "run an end-to-end smoke against a loopback listener and exit")
	)
	flag.Parse()

	srv := server.New(server.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		MaxRunDuration: *maxRun,
		Shards:         *shards,
	})

	if *selftest {
		if err := runSelftest(srv); err != nil {
			fmt.Fprintln(os.Stderr, "selftest FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("selftest PASSED")
		return
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("nocstar-serve listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("received %v; draining in-flight runs (budget %v)", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	log.Println("drained cleanly")
}

// selftestConfig is a deliberately small run so the smoke finishes in
// about a second.
const selftestConfig = `{
	"schema": 1,
	"org": "nocstar",
	"cores": 8,
	"apps": [{"workload": "gups", "threads": 8}],
	"instr_per_thread": 20000,
	"seed": 1
}`

// runSelftest exercises the service end to end over a real loopback
// listener: submit, poll to completion, verify the HTTP result is
// byte-identical to a direct in-process Run, then resubmit and verify a
// cache hit. Backs `make serve-smoke`.
func runSelftest(srv *server.Server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		srv.Shutdown(ctx)
	}()

	type status struct {
		ID     string          `json:"id"`
		State  string          `json:"state"`
		Cached bool            `json:"cached"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}

	// The reference: a direct in-process run of the same config.
	cfg, err := system.UnmarshalConfig([]byte(selftestConfig))
	if err != nil {
		return fmt.Errorf("decoding selftest config: %w", err)
	}
	direct, err := system.Run(cfg)
	if err != nil {
		return fmt.Errorf("direct run: %w", err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		return err
	}

	// Submit and poll to completion.
	resp, err := http.Post(base+"/v1/runs", "application/json", bytes.NewReader([]byte(selftestConfig)))
	if err != nil {
		return err
	}
	var st status
	if err := decodeInto(resp, http.StatusAccepted, &st); err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for st.State != "done" {
		if time.Now().After(deadline) {
			return fmt.Errorf("run %s stuck in state %q", st.ID, st.State)
		}
		if st.State == "failed" || st.State == "canceled" {
			return fmt.Errorf("run %s ended %s: %s", st.ID, st.State, st.Error)
		}
		time.Sleep(50 * time.Millisecond)
		resp, err = http.Get(base + "/v1/runs/" + st.ID)
		if err != nil {
			return err
		}
		if err := decodeInto(resp, http.StatusOK, &st); err != nil {
			return fmt.Errorf("poll: %w", err)
		}
	}
	if !bytes.Equal(st.Result, want) {
		return fmt.Errorf("HTTP result differs from direct run (%d vs %d bytes)", len(st.Result), len(want))
	}
	fmt.Println("selftest: HTTP result byte-identical to direct run")

	// Resubmit: must be served from the result cache, byte-identical.
	resp, err = http.Post(base+"/v1/runs", "application/json", bytes.NewReader([]byte(selftestConfig)))
	if err != nil {
		return err
	}
	var again status
	if err := decodeInto(resp, http.StatusOK, &again); err != nil {
		return fmt.Errorf("resubmit: %w", err)
	}
	if !again.Cached {
		return fmt.Errorf("resubmit not served from cache (state %q)", again.State)
	}
	if !bytes.Equal(again.Result, want) {
		return fmt.Errorf("cached result differs from direct run")
	}
	fmt.Println("selftest: resubmit served from cache, byte-identical")

	// The read-only endpoints must answer.
	for _, path := range []string{"/healthz", "/metrics", "/v1/workloads", "/v1/experiments", "/v1/runs"} {
		resp, err := http.Get(base + path)
		if err != nil {
			return fmt.Errorf("GET %s: %w", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	fmt.Println("selftest: healthz, metrics, workloads, experiments, runs all answer")
	return nil
}

// decodeInto checks the status code and decodes the JSON body.
func decodeInto(resp *http.Response, want int, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		return fmt.Errorf("status %d (want %d): %s", resp.StatusCode, want, body)
	}
	return json.Unmarshal(body, v)
}
