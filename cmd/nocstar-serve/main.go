// Command nocstar-serve runs the simulator as a long-lived HTTP
// service: clients POST JSON configs to /v1/runs (or whole design-space
// sweeps to /v1/sweeps), poll run status, stream progress and results
// over SSE, and share a content-addressed result cache across requests
// — and, with -store-dir, across restarts and replicas.
//
// Usage:
//
//	nocstar-serve -addr :8080 -workers 8 -cache 256
//	nocstar-serve -addr :8080 -store-dir /var/lib/nocstar/results
//	nocstar-serve -addr :8081 -node http://10.0.0.2:8081 \
//	    -peers http://10.0.0.1:8081,http://10.0.0.2:8081
//	nocstar-serve -selftest          # end-to-end smoke against a loopback listener
//	nocstar-serve -selftest-cluster  # two-node consistent-hash smoke
//
// Endpoints:
//
//	POST   /v1/runs             submit a config (optionally ?timeout=30s)
//	POST   /v1/sweeps           submit a config array; results stream back as SSE
//	GET    /v1/runs             list accepted runs
//	GET    /v1/runs/{id}        run status; includes the result when done
//	DELETE /v1/runs/{id}        cancel a queued or running job
//	GET    /v1/runs/{id}/events run state transitions as SSE
//	GET    /v1/workloads        the built-in workload suite
//	GET    /v1/experiments      the paper experiment registry
//	GET    /healthz             liveness and pool occupancy (503 while draining)
//	GET    /metrics             Prometheus text exposition
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nocstar/internal/server"
	"nocstar/internal/system"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 64, "bounded submission queue depth (full queue returns 429)")
		cache        = flag.Int("cache", 128, "in-memory result-cache entries, keyed on canonical config hash")
		storeDir     = flag.String("store-dir", "", "persistent content-addressed result store directory (survives restarts; shareable between replicas)")
		storeEntries = flag.Int("store-max-entries", 0, "persistent store entry bound (0 = 4096)")
		storeBytes   = flag.Int64("store-max-bytes", 0, "persistent store payload-byte bound (0 = unbounded)")
		peers        = flag.String("peers", "", "comma-separated base URLs of every replica (enables consistent-hash work sharding)")
		node         = flag.String("node", "", "this replica's own entry in -peers")
		history      = flag.Int("job-history", 0, "terminal jobs retained in the run registry (0 = 512)")
		maxRun       = flag.Duration("max-run", 0, "wall-clock cap on every run; 0 means uncapped")
		shards       = flag.Int("shards", 0, "worker goroutines inside each shardable run (0 = legacy single-engine)")
		drain        = flag.Duration("drain", time.Minute, "graceful-shutdown drain budget for in-flight runs")
		selftest     = flag.Bool("selftest", false, "run an end-to-end smoke against a loopback listener and exit")
		selfcluster  = flag.Bool("selftest-cluster", false, "run a two-node consistent-hash smoke on loopback listeners and exit")
	)
	flag.Parse()

	opts := server.Options{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cache,
		StoreDir:        *storeDir,
		StoreMaxEntries: *storeEntries,
		StoreMaxBytes:   *storeBytes,
		JobHistory:      *history,
		MaxRunDuration:  *maxRun,
		Shards:          *shards,
	}
	if *peers != "" {
		opts.Peers = strings.Split(*peers, ",")
		opts.Node = *node
	}

	if *selftest {
		if err := runSelftest(opts); err != nil {
			fmt.Fprintln(os.Stderr, "selftest FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("selftest PASSED")
		return
	}
	if *selfcluster {
		if err := runClusterSelftest(opts); err != nil {
			fmt.Fprintln(os.Stderr, "cluster selftest FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("cluster selftest PASSED")
		return
	}

	srv, err := server.New(opts)
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("nocstar-serve listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("received %v; draining in-flight runs (budget %v)", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the serve tier before closing the listener: the moment
	// Shutdown starts, /healthz answers 503 "draining" and new
	// submissions are refused, but pollers can still collect results —
	// a load balancer sees the node drain instead of drop.
	drainErr := srv.Shutdown(ctx)
	httpSrv.Shutdown(ctx)
	if drainErr != nil {
		log.Printf("drain incomplete: %v", drainErr)
		os.Exit(1)
	}
	log.Println("drained cleanly")
}

// node is one booted loopback server instance used by the selftests.
type testNode struct {
	srv  *server.Server
	http *http.Server
	ln   net.Listener
	base string
}

// boot starts a server over a fresh loopback listener. When ln is nil a
// new one is bound; passing one in lets callers learn addresses before
// constructing peer lists.
func boot(opts server.Options, ln net.Listener) (*testNode, error) {
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
	}
	srv, err := server.New(opts)
	if err != nil {
		ln.Close()
		return nil, err
	}
	n := &testNode{
		srv:  srv,
		http: &http.Server{Handler: srv.Handler()},
		ln:   ln,
		base: "http://" + ln.Addr().String(),
	}
	go n.http.Serve(ln)
	return n, nil
}

func (n *testNode) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	n.srv.Shutdown(ctx)
	n.http.Shutdown(ctx)
}

// selftestConfig is a deliberately small run so the smoke finishes in
// about a second.
const selftestConfig = `{
	"schema": 1,
	"org": "nocstar",
	"cores": 8,
	"apps": [{"workload": "gups", "threads": 8}],
	"instr_per_thread": 20000,
	"seed": 1
}`

// selftestConfig2 is a second, distinct point for the sweep smoke.
const selftestConfig2 = `{
	"schema": 1,
	"org": "nocstar",
	"cores": 8,
	"apps": [{"workload": "gups", "threads": 8}],
	"instr_per_thread": 20000,
	"seed": 2
}`

type status struct {
	ID     string          `json:"id"`
	State  string          `json:"state"`
	Cached bool            `json:"cached"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

// directResult runs cfgJSON in process and returns its marshaled Result
// — the byte-identity reference for everything served over HTTP.
func directResult(cfgJSON string) ([]byte, error) {
	cfg, err := system.UnmarshalConfig([]byte(cfgJSON))
	if err != nil {
		return nil, fmt.Errorf("decoding config: %w", err)
	}
	res, err := system.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("direct run: %w", err)
	}
	return json.Marshal(res)
}

// submitAndPoll POSTs a config and polls the run to a terminal state.
func submitAndPoll(base, cfgJSON string) (status, error) {
	resp, err := http.Post(base+"/v1/runs", "application/json", strings.NewReader(cfgJSON))
	if err != nil {
		return status{}, err
	}
	var st status
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return status{}, err
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return status{}, fmt.Errorf("submit: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return status{}, err
	}
	deadline := time.Now().Add(2 * time.Minute)
	for st.State != "done" {
		if time.Now().After(deadline) {
			return st, fmt.Errorf("run %s stuck in state %q", st.ID, st.State)
		}
		if st.State == "failed" || st.State == "canceled" {
			return st, fmt.Errorf("run %s ended %s: %s", st.ID, st.State, st.Error)
		}
		time.Sleep(50 * time.Millisecond)
		resp, err := http.Get(base + "/v1/runs/" + st.ID)
		if err != nil {
			return st, err
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// runSelftest exercises the service end to end over a real loopback
// listener: submit, poll to completion, verify the HTTP result is
// byte-identical to a direct in-process Run, resubmit and verify a
// cache hit, stream a two-config sweep over SSE, then boot a second
// server over the same store directory and verify the result survived
// the "restart" without re-execution. Backs `make serve-smoke`.
func runSelftest(opts server.Options) error {
	if opts.StoreDir == "" {
		dir, err := os.MkdirTemp("", "nocstar-selftest-store-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		opts.StoreDir = dir
	}
	n, err := boot(opts, nil)
	if err != nil {
		return err
	}
	defer n.stop()

	want, err := directResult(selftestConfig)
	if err != nil {
		return err
	}

	// Submit and poll to completion.
	st, err := submitAndPoll(n.base, selftestConfig)
	if err != nil {
		return err
	}
	if !bytes.Equal(st.Result, want) {
		return fmt.Errorf("HTTP result differs from direct run (%d vs %d bytes)", len(st.Result), len(want))
	}
	fmt.Println("selftest: HTTP result byte-identical to direct run")

	// Resubmit: must be served from the result cache, byte-identical.
	again, err := submitAndPoll(n.base, selftestConfig)
	if err != nil {
		return err
	}
	if !again.Cached {
		return fmt.Errorf("resubmit not served from cache (state %q)", again.State)
	}
	if !bytes.Equal(again.Result, want) {
		return fmt.Errorf("cached result differs from direct run")
	}
	fmt.Println("selftest: resubmit served from cache, byte-identical")

	// Sweep: two configs over SSE, one a store hit, one fresh.
	want2, err := directResult(selftestConfig2)
	if err != nil {
		return err
	}
	results, summary, err := postSweep(n.base, "["+selftestConfig+","+selftestConfig2+"]")
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	if len(results) != 2 || summary.Total != 2 || summary.Done != 2 {
		return fmt.Errorf("sweep: %d results, summary %+v", len(results), summary)
	}
	for _, r := range results {
		ref := want
		if r.Index == 1 {
			ref = want2
		}
		if r.State != "done" || !bytes.Equal(r.Result, ref) {
			return fmt.Errorf("sweep result %d: state %q, %d bytes (want %d)", r.Index, r.State, len(r.Result), len(ref))
		}
	}
	fmt.Println("selftest: sweep streamed both results over SSE, byte-identical")

	// The store directory holds the blobs.
	entries, err := os.ReadDir(opts.StoreDir)
	if err != nil {
		return err
	}
	blobs := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			blobs++
		}
	}
	if blobs < 2 {
		return fmt.Errorf("store dir %s holds %d blobs, want >= 2", opts.StoreDir, blobs)
	}

	// Restart survival: a fresh server over the same store directory
	// serves the result as a cache hit without re-executing.
	n2, err := boot(opts, nil)
	if err != nil {
		return err
	}
	defer n2.stop()
	revived, err := submitAndPoll(n2.base, selftestConfig)
	if err != nil {
		return err
	}
	if !revived.Cached || !bytes.Equal(revived.Result, want) {
		return fmt.Errorf("restart: cached=%v, bytes equal=%v", revived.Cached, bytes.Equal(revived.Result, want))
	}
	if n, err := metricValue(n2.base, "nocstar_server_runs_executed"); err != nil || n != 0 {
		return fmt.Errorf("restarted server executed %d runs (err %v), want 0", n, err)
	}
	fmt.Println("selftest: result survived restart via persistent store, no re-execution")

	// The read-only endpoints must answer.
	for _, path := range []string{"/healthz", "/metrics", "/v1/workloads", "/v1/experiments", "/v1/runs"} {
		resp, err := http.Get(n.base + path)
		if err != nil {
			return fmt.Errorf("GET %s: %w", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	fmt.Println("selftest: healthz, metrics, workloads, experiments, runs all answer")
	return nil
}

type sweepResult struct {
	Index  int             `json:"index"`
	State  string          `json:"state"`
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
}

type sweepSummary struct {
	Total     int `json:"total"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Canceled  int `json:"canceled"`
	CacheHits int `json:"cache_hits"`
}

// postSweep submits a config array to /v1/sweeps and parses the SSE
// stream into result frames and the terminal summary.
func postSweep(base, body string) ([]sweepResult, sweepSummary, error) {
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		return nil, sweepSummary{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return nil, sweepSummary{}, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	var (
		results []sweepResult
		summary sweepSummary
		event   string
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "result":
				var r sweepResult
				if err := json.Unmarshal([]byte(data), &r); err != nil {
					return nil, summary, err
				}
				results = append(results, r)
			case "summary":
				if err := json.Unmarshal([]byte(data), &summary); err != nil {
					return nil, summary, err
				}
			}
		}
	}
	return results, summary, sc.Err()
}

// metricValue scrapes one counter from a node's /metrics exposition.
func metricValue(base, name string) (int64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var v int64
		if n, _ := fmt.Sscanf(sc.Text(), name+" %d", &v); n == 1 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("metric %s not found", name)
}

// runClusterSelftest boots two in-process nodes wired as consistent-hash
// peers, each with its own store directory, and verifies the sharding
// contract: a config submitted to either node executes exactly once
// cluster-wide, both nodes serve it byte-identically, and the
// non-owning node serves later hits from its own store. Backs
// `make serve-cluster-smoke`.
func runClusterSelftest(opts server.Options) error {
	want, err := directResult(selftestConfig)
	if err != nil {
		return err
	}

	// Bind listeners first so the peer list exists before the servers.
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()
	peers := []string{urlA, urlB}

	mk := func(self, dir string, ln net.Listener) (*testNode, error) {
		o := opts
		o.StoreDir = dir
		o.Peers = peers
		o.Node = self
		return boot(o, ln)
	}
	dirA, err := os.MkdirTemp("", "nocstar-cluster-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dirA)
	dirB, err := os.MkdirTemp("", "nocstar-cluster-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dirB)
	a, err := mk(urlA, dirA, lnA)
	if err != nil {
		return err
	}
	defer a.stop()
	b, err := mk(urlB, dirB, lnB)
	if err != nil {
		return err
	}
	defer b.stop()

	// Submit to node A, then to node B. Whichever owns the hash must be
	// the only executor; the other serves via proxy or its own store.
	stA, err := submitAndPoll(a.base, selftestConfig)
	if err != nil {
		return fmt.Errorf("node A: %w", err)
	}
	if !bytes.Equal(stA.Result, want) {
		return fmt.Errorf("node A result differs from direct run")
	}
	stB, err := submitAndPoll(b.base, selftestConfig)
	if err != nil {
		return fmt.Errorf("node B: %w", err)
	}
	if !bytes.Equal(stB.Result, want) {
		return fmt.Errorf("node B result differs from direct run")
	}

	execA, err := metricValue(a.base, "nocstar_server_runs_executed")
	if err != nil {
		return err
	}
	execB, err := metricValue(b.base, "nocstar_server_runs_executed")
	if err != nil {
		return err
	}
	if execA+execB != 1 {
		return fmt.Errorf("cluster executed %d+%d runs, want exactly 1", execA, execB)
	}
	fmt.Printf("cluster selftest: one execution cluster-wide (A=%d B=%d), both nodes byte-identical\n", execA, execB)

	// Both nodes now hold the blob locally: a resubmission anywhere is
	// a local store hit even with the other node gone.
	for name, n := range map[string]*testNode{"A": a, "B": b} {
		st, err := submitAndPoll(n.base, selftestConfig)
		if err != nil {
			return fmt.Errorf("node %s resubmit: %w", name, err)
		}
		if !st.Cached || !bytes.Equal(st.Result, want) {
			return fmt.Errorf("node %s resubmit: cached=%v", name, st.Cached)
		}
	}
	fmt.Println("cluster selftest: both nodes serve the hash from their own stores")
	return nil
}
