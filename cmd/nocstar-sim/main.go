// Command nocstar-sim runs one simulated configuration and prints a
// detailed report of the translation path: runtime, TLB statistics,
// network behaviour, walk latencies, concurrency, and energy.
//
// Usage:
//
//	nocstar-sim -org nocstar -cores 32 -workload canneal -thp
//	nocstar-sim -org private -cores 16 -workload gups -instr 500000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"nocstar/internal/noc"
	"nocstar/internal/place"
	"nocstar/internal/stats"
	"nocstar/internal/system"
	"nocstar/internal/workload"
)

var orgNames = map[string]system.Org{
	"private":     system.Private,
	"mono":        system.MonolithicMesh,
	"mono-smart":  system.MonolithicSMART,
	"distributed": system.DistributedMesh,
	"nocstar":     system.Nocstar,
	"ideal":       system.IdealShared,
}

func main() {
	var (
		orgName  = flag.String("org", "nocstar", "organization: private|mono|mono-smart|distributed|nocstar|ideal")
		cores    = flag.Int("cores", 32, "core count")
		name     = flag.String("workload", "canneal", "suite workload name")
		thp      = flag.Bool("thp", false, "enable transparent 2MB superpages")
		smt      = flag.Int("smt", 1, "hyperthreads per core")
		prefetch = flag.Int("prefetch", 0, "translation prefetch degree (0-3)")
		instr    = flag.Uint64("instr", 200_000, "instructions per thread")
		seed     = flag.Int64("seed", 1, "simulation seed")
		baseline = flag.Bool("baseline", true, "also run the private baseline and report speedup")
		timeout  = flag.Duration("timeout", 0, "wall-clock cap on each run (e.g. 30s); 0 means uncapped")
		topology = flag.String("topology", "mesh", "fabric topology for mesh-routed orgs: "+strings.Join(noc.TopologyTokens(), "|"))
		placemnt = flag.String("placement", "row-major", "slice placement for sliced orgs: "+strings.Join(place.Tokens(), "|"))
		plSeed   = flag.Int64("placement-seed", 0, "seed for seeded placement strategies (0 = -seed)")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	org, ok := orgNames[*orgName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown org %q\n", *orgName)
		os.Exit(2)
	}
	spec, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (have %s)\n",
			*name, strings.Join(workload.Names(), ", "))
		os.Exit(2)
	}
	kind, ok := noc.ParseTopologyKind(*topology)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown topology %q (have %s)\n",
			*topology, strings.Join(noc.TopologyTokens(), ", "))
		os.Exit(2)
	}
	strat, ok := place.ParseStrategy(*placemnt)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown placement %q (have %s)\n",
			*placemnt, strings.Join(place.Tokens(), ", "))
		os.Exit(2)
	}

	cfg := system.Config{
		Org:            org,
		Cores:          *cores,
		SMT:            *smt,
		PrefetchDegree: *prefetch,
		THP:            *thp,
		Topology:       kind,
		Placement:      strat,
		PlacementSeed:  *plSeed,
		Apps:           []system.App{{Spec: spec, Threads: *cores * *smt, HammerSlice: system.HammerNone}},
		InstrPerThread: *instr / uint64(*smt),
		Seed:           *seed,
	}
	r, err := system.RunContext(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	t := stats.NewTable(fmt.Sprintf("%s on %d-core %s (THP=%v)", spec.Name, *cores, org, *thp))
	t.Row("metric", "value")
	t.Row("cycles", r.Cycles)
	t.Row("instructions", r.Instructions)
	t.Row("IPC", fmt.Sprintf("%.3f", r.IPC))
	t.Row("L1 TLB miss rate", fmt.Sprintf("%.4f", r.L1MissRate()))
	t.Row("L2 TLB accesses", r.L2Accesses)
	t.Row("L2 TLB miss rate", fmt.Sprintf("%.4f", r.L2MissRate()))
	t.Row("L2 misses / kilo-instr", fmt.Sprintf("%.3f", r.MPKI()))
	t.Row("page walks", r.Walks)
	t.Row("avg walk cycles", fmt.Sprintf("%.1f", r.PTW.AvgCycles()))
	t.Row("leaf PTE from LLC/mem", fmt.Sprintf("%.1f%%", 100*r.PTW.LeafLLCOrMemFraction()))
	t.Row("avg L2 access cycles", fmt.Sprintf("%.1f", r.AvgL2AccessCycles))
	t.Row("local slice accesses", r.LocalSlice)
	if r.Noc.Messages > 0 {
		t.Row("fabric messages", r.Noc.Messages)
		t.Row("avg path setup cycles", fmt.Sprintf("%.2f", r.Noc.AvgSetupCycles()))
		t.Row("contention-free setups", fmt.Sprintf("%.1f%%", 100*r.Noc.NoContentionFraction()))
	}
	t.Row("translation energy (uJ)", fmt.Sprintf("%.2f", r.Energy.TotalPJ()/1e6))
	fmt.Print(t.String())

	fmt.Println("\nconcurrency of shared L2 accesses:")
	for i, b := range stats.ConcurrencyBuckets {
		fmt.Printf("  %-10s %.1f%%\n", b.Label, 100*r.Conc.Fractions()[i])
	}

	if *baseline && org != system.Private {
		bcfg := cfg
		bcfg.Org = system.Private
		bcfg.L2EntriesPerCore = 0
		// The private baseline has no shared fabric to route or slices to
		// place; validation rejects the knobs there.
		bcfg.Topology = noc.TopoMesh
		bcfg.Placement = place.RowMajor
		bcfg.PlacementSeed = 0
		b, err := system.RunContext(ctx, bcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nspeedup vs private L2 TLBs: %.3fx (misses eliminated: %.1f%%)\n",
			r.SpeedupOver(b), 100*r.MissesEliminatedVs(b))
	}
}
