// Command nocstar-trace captures, inspects, and replays address traces.
//
// Usage:
//
//	nocstar-trace gen -workload canneal -threads 16 -refs 100000 -o canneal.trc
//	nocstar-trace stat canneal.trc
//	nocstar-trace replay -org nocstar -cores 16 canneal.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"nocstar/internal/system"
	"nocstar/internal/trace"
	"nocstar/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		genCmd(os.Args[2:])
	case "stat":
		statCmd(os.Args[2:])
	case "replay":
		replayCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: nocstar-trace gen|stat|replay [flags] [file]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func genCmd(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	name := fs.String("workload", "canneal", "suite workload to capture")
	threads := fs.Int("threads", 16, "thread count")
	refs := fs.Uint64("refs", 100_000, "references per thread")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gen: -o required")
		os.Exit(2)
	}
	spec, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "gen: unknown workload %q\n", *name)
		os.Exit(2)
	}
	tr := trace.Capture(spec, *threads, *refs, *seed)
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		fatal(err)
	}
	info, _ := f.Stat()
	fmt.Printf("captured %d refs x %d threads of %s -> %s (%.2f bytes/ref)\n",
		*refs, *threads, *name, *out, float64(info.Size())/float64(tr.Refs()))
}

func load(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	return tr
}

func statCmd(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "stat: one trace file required")
		os.Exit(2)
	}
	s := trace.Analyze(load(fs.Arg(0)))
	fmt.Printf("trace:          %s\n", s.Name)
	fmt.Printf("threads:        %d\n", s.Threads)
	fmt.Printf("references:     %d\n", s.Refs)
	fmt.Printf("distinct pages: %d (%.1f MB footprint)\n",
		s.DistinctPages, float64(s.DistinctPages)*4096/1e6)
	fmt.Printf("distinct 2MB:   %d extents\n", s.Distinct2M)
	fmt.Printf("shared pages:   %d (%.1f%% of distinct)\n",
		s.SharedPages, 100*float64(s.SharedPages)/float64(max(1, s.DistinctPages)))
	fmt.Printf("reuse rate:     %.3f\n", s.ReuseRate)
}

func replayCmd(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	orgName := fs.String("org", "nocstar", "organization: private|mono|distributed|nocstar|ideal")
	cores := fs.Int("cores", 16, "core count")
	instr := fs.Uint64("instr", 100_000, "instructions per thread")
	seed := fs.Int64("seed", 1, "simulation seed")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "replay: one trace file required")
		os.Exit(2)
	}
	orgs := map[string]system.Org{
		"private": system.Private, "mono": system.MonolithicMesh,
		"distributed": system.DistributedMesh, "nocstar": system.Nocstar,
		"ideal": system.IdealShared,
	}
	org, ok := orgs[*orgName]
	if !ok {
		fmt.Fprintf(os.Stderr, "replay: unknown org %q\n", *orgName)
		os.Exit(2)
	}
	tr := load(fs.Arg(0))
	spec, ok := workload.ByName(tr.Name)
	if !ok {
		// Replaying an unknown workload: use a neutral spec for CPI.
		spec = workload.Uniform(tr.Name, 1)
	}
	if len(tr.Threads) > *cores {
		fmt.Fprintf(os.Stderr, "replay: trace has %d threads but only %d cores\n",
			len(tr.Threads), *cores)
		os.Exit(2)
	}
	streams := make([]workload.Stream, len(tr.Threads))
	for i := range streams {
		r, err := tr.NewReplayer(i)
		if err != nil {
			fatal(err)
		}
		streams[i] = r
	}
	cfg := system.Config{
		Org:            org,
		Cores:          *cores,
		Apps:           []system.App{{Spec: spec, Threads: len(tr.Threads), HammerSlice: system.HammerNone, Streams: streams}},
		InstrPerThread: *instr,
		Seed:           *seed,
	}
	r, err := system.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %s on %d-core %s: %d cycles, IPC %.3f, L2 miss rate %.3f\n",
		tr.Name, *cores, org, r.Cycles, r.IPC, r.L2MissRate())
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
