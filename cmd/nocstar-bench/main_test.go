package main

import "testing"

func TestParseBench(t *testing.T) {
	raw := []byte(`goos: linux
goarch: amd64
pkg: nocstar
BenchmarkTable3 	       3	3958353708 ns/op	         1.420 nocstar-fixed80-avg	    504123 refs/sec	904010832 B/op	 1001359 allocs/op
BenchmarkFig12-8 	       2	 123456789 ns/op	         2.500 nocstar-speedup-16c-4K
PASS
ok  	nocstar	15.921s
`)
	got := parseBench(raw)
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(got))
	}
	b := got[0]
	if b.Name != "BenchmarkTable3" || b.Iterations != 3 {
		t.Fatalf("bad header parse: %+v", b)
	}
	if b.SecPerOp < 3.95 || b.SecPerOp > 3.96 {
		t.Fatalf("sec_per_op = %v", b.SecPerOp)
	}
	if b.BytesPerOp != 904010832 || b.AllocsPerOp != 1001359 {
		t.Fatalf("memstats: %+v", b)
	}
	if b.Metrics["nocstar-fixed80-avg"] != 1.420 || b.Metrics["refs/sec"] != 504123 {
		t.Fatalf("metrics: %+v", b.Metrics)
	}
	if got[1].Name != "BenchmarkFig12" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", got[1].Name)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if got := parseBench([]byte("PASS\nok nocstar 1s\n")); len(got) != 0 {
		t.Fatalf("parsed %d benchmarks from non-bench output", len(got))
	}
}
