// Command nocstar-bench runs (or parses) `go test -bench` output and
// emits a machine-readable JSON record, so the repository can track its
// performance trajectory per PR instead of per anecdote.
//
// Typical use, via the Makefile:
//
//	make bench-json                   # run BenchmarkTable3, write BENCH_<yyyymmdd>.json
//	make bench-compare OLD=a NEW=b    # benchstat two recorded runs
//
// Direct use:
//
//	nocstar-bench -bench 'BenchmarkTable3$' -benchtime 3x -out BENCH_20260808.json
//	go test -run xxx -bench . -benchmem . | nocstar-bench -in - -out bench.json
//
// The JSON shape (one object per benchmark line):
//
//	{
//	  "date": "2026-08-08",
//	  "git_sha": "abc123...",          // "-dirty" suffixed when the tree is
//	  "go_version": "go1.24.0",        // modified relative to HEAD
//	  "benchmarks": [
//	    {"name": "BenchmarkTable3", "iterations": 3,
//	     "sec_per_op": 3.958, "bytes_per_op": 904010832,
//	     "allocs_per_op": 1001359,
//	     "metrics": {"nocstar-fixed80-avg": 1.42}}
//	  ]
//	}
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Record is the document written to -out.
type Record struct {
	Date       string      `json:"date"`
	GitSHA     string      `json:"git_sha"`
	GoVersion  string      `json:"go_version"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Shards     int         `json:"shards,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	SecPerOp    float64            `json:"sec_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		bench     = flag.String("bench", "BenchmarkTable3$", "benchmark pattern passed to go test -bench")
		benchtime = flag.String("benchtime", "3x", "value passed to go test -benchtime")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		in        = flag.String("in", "", "parse this bench-output file instead of running go test (- for stdin)")
		out       = flag.String("out", "", "output JSON path (default BENCH_<yyyymmdd>.json; - for stdout)")
		shards    = flag.Int("shards", 0, "intra-run shard count recorded in the output metadata (the benchmark itself reads NOCSTAR_SHARDS)")
	)
	flag.Parse()

	var raw []byte
	var err error
	switch {
	case *in == "-":
		raw, err = io.ReadAll(os.Stdin)
	case *in != "":
		raw, err = os.ReadFile(*in)
	default:
		raw, err = runBench(*bench, *benchtime, *pkg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocstar-bench:", err)
		os.Exit(1)
	}

	benches := parseBench(raw)
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "nocstar-bench: no benchmark lines found in input")
		os.Exit(1)
	}
	rec := Record{
		Date:       time.Now().Format("2006-01-02"),
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Shards:     *shards,
		Benchmarks: benches,
	}
	doc, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocstar-bench:", err)
		os.Exit(1)
	}
	doc = append(doc, '\n')

	path := *out
	if path == "" {
		path = "BENCH_" + time.Now().Format("20060102") + ".json"
	}
	if path == "-" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "nocstar-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "nocstar-bench: wrote %s (%d benchmark(s))\n", path, len(benches))
}

// runBench executes go test -bench and returns its combined output.
func runBench(pattern, benchtime, pkg string) ([]byte, error) {
	cmd := exec.Command("go", "test", "-run", "xxx",
		"-bench", pattern, "-benchtime", benchtime, "-benchmem", pkg)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	return buf.Bytes(), nil
}

// parseBench extracts benchmark result lines from go test output. A line
// is `Benchmark<Name>[-P] <iters> <value> <unit> [<value> <unit>]...`;
// ns/op, B/op and allocs/op map to dedicated fields, anything else (the
// custom ReportMetric units) lands in Metrics.
func parseBench(raw []byte) []Benchmark {
	var out []Benchmark
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       stripProcs(fields[0]),
			Iterations: iters,
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.SecPerOp = val / 1e9
			case "B/op":
				b.BytesPerOp = int64(val)
			case "allocs/op":
				b.AllocsPerOp = int64(val)
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		out = append(out, b)
	}
	return out
}

// stripProcs removes the -<GOMAXPROCS> suffix go test appends to
// benchmark names (whatever the generating machine's value was).
func stripProcs(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// gitSHA reports HEAD's commit, "-dirty" suffixed when tracked files are
// modified relative to HEAD, or "unknown" outside a repository. Untracked
// files (benchmark outputs, profiles, scratch notes) do not affect the
// provenance of the built code, so `git status --porcelain` — which
// flags them — would mark clean builds dirty; diff-index inspects only
// what HEAD tracks.
func gitSHA() string {
	sha, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	out := strings.TrimSpace(string(sha))
	if status, err := exec.Command("git", "diff-index", "--name-only", "HEAD", "--").Output(); err == nil &&
		len(bytes.TrimSpace(status)) > 0 {
		out += "-dirty"
	}
	return out
}
