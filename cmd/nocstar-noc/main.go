// Command nocstar-noc explores the TLB interconnect in isolation:
// synthetic-traffic sweeps on the circuit-switched fabric, latency-vs-hops
// curves, and the Table I design space.
//
// Usage:
//
//	nocstar-noc -nodes 64 -sweep
//	nocstar-noc -nodes 64 -rate 0.1 -cycles 50000
//	nocstar-noc -design
package main

import (
	"flag"
	"fmt"

	"nocstar/internal/experiments"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 64, "fabric node count")
		rate   = flag.Float64("rate", 0.1, "per-node injection probability per cycle")
		cycles = flag.Uint64("cycles", 30_000, "cycles of synthetic traffic")
		seed   = flag.Int64("seed", 1, "traffic seed")
		sweep  = flag.Bool("sweep", false, "run the full Fig. 11(c) injection sweep")
		design = flag.Bool("design", false, "print the Table I design space")
		hops   = flag.Bool("hops", false, "print the Fig. 11(a) latency-vs-hops curves")
	)
	flag.Parse()

	switch {
	case *design:
		fmt.Print(experiments.Table1().Render())
	case *hops:
		fmt.Print(experiments.Fig11a().Render())
	case *sweep:
		opts := experiments.DefaultOptions()
		opts.Instr = *cycles * 5
		opts.Seed = *seed
		fmt.Print(experiments.Fig11c(opts).Render())
	default:
		lat, free := experiments.Fig11cPoint(*nodes, *rate, *cycles, *seed)
		fmt.Printf("%d-node NOCSTAR fabric, injection %.2f msg/node/cycle over %d cycles:\n",
			*nodes, *rate, *cycles)
		fmt.Printf("  average network latency: %.2f cycles\n", lat)
		fmt.Printf("  contention-free setups:  %.1f%%\n", 100*free)
	}
}
