module nocstar

go 1.22
