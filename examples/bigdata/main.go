// Bigdata: the paper's motivating scenario — memory-intensive analytics
// (graph500, xsbench, gups) with transparent superpages on a large chip.
// Sweeps the last-level TLB organizations and shows where each stands.
package main

import (
	"fmt"
	"log"

	"nocstar"
)

func main() {
	const cores = 32
	orgs := []struct {
		name string
		org  nocstar.Org
	}{
		{"monolithic shared", nocstar.MonolithicMesh},
		{"distributed mesh", nocstar.DistributedMesh},
		{"NOCSTAR", nocstar.Nocstar},
		{"ideal (zero net)", nocstar.IdealShared},
	}

	for _, name := range []string{"graph500", "xsbench", "gups"} {
		spec, ok := nocstar.WorkloadByName(name)
		if !ok {
			log.Fatalf("missing workload %s", name)
		}
		mk := func(org nocstar.Org) nocstar.Config {
			return nocstar.Config{
				Org:            org,
				Cores:          cores,
				THP:            true, // Linux transparent 2MB superpages
				Apps:           []nocstar.App{{Spec: spec, Threads: cores, HammerSlice: nocstar.HammerNone}},
				InstrPerThread: 120_000,
				Seed:           7,
			}
		}
		baseline, err := nocstar.Run(mk(nocstar.Private))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%d cores, THP): private = %d cycles, %.1f%% of walks hit LLC/memory\n",
			name, cores, baseline.Cycles, 100*baseline.PTW.LeafLLCOrMemFraction())
		for _, o := range orgs {
			r, err := nocstar.Run(mk(o.org))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-18s speedup %.3fx  (L2 access %.1f cycles, misses eliminated %.0f%%)\n",
				o.name, r.SpeedupOver(baseline), r.AvgL2AccessCycles,
				100*r.MissesEliminatedVs(baseline))
		}
		fmt.Println()
	}
}
