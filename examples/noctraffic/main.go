// Noctraffic: drive the circuit-switched TLB interconnect with synthetic
// traffic and inspect how path-setup contention builds with injection
// rate, then print the interconnect design space the fabric was chosen
// from (Table I / Fig. 11c of the paper).
package main

import (
	"fmt"
	"log"

	"nocstar"
)

func main() {
	opts := nocstar.DefaultExperimentOptions()
	opts.Instr = 100_000 // ~20k cycles of traffic per point

	out, err := nocstar.RunExperiment("fig11c", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
	fmt.Println()

	out, err = nocstar.RunExperiment("tab1", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
	fmt.Println()

	out, err = nocstar.RunExperiment("fig11a", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}
