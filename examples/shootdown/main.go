// Shootdown: tune the TLB invalidation leader count for a workload with
// heavy page remapping. Every shootdown must invalidate the stale
// translation in the shared slices; this example compares direct sends
// (every core relays its own invalidation) against leader batching
// (Section III-G / Fig. 16 right), and finishes with a full TLB storm.
package main

import (
	"fmt"
	"log"

	"nocstar"
)

func main() {
	const cores = 32
	spec, ok := nocstar.WorkloadByName("mongodb")
	if !ok {
		log.Fatal("missing workload")
	}
	mk := func(leaders int, storm *nocstar.StormConfig) nocstar.Config {
		return nocstar.Config{
			Org:               nocstar.Nocstar,
			Cores:             cores,
			Apps:              []nocstar.App{{Spec: spec, Threads: cores, HammerSlice: nocstar.HammerNone}},
			InstrPerThread:    120_000,
			ShootdownInterval: 2_000, // a remap every 1us at 2GHz: remap-heavy
			InvLeaders:        leaders,
			Storm:             storm,
			Seed:              5,
		}
	}

	fmt.Printf("%s on %d cores with a page remap every 2000 cycles:\n\n", spec.Name, cores)
	var base nocstar.Result
	for _, c := range []struct {
		label   string
		leaders int
	}{
		{"direct (per-core sends)", 0},
		{"1 leader per 8 cores", cores / 8},
		{"1 leader per 4 cores", cores / 4},
		{"single leader", 1},
	} {
		r, err := nocstar.Run(mk(c.leaders, nil))
		if err != nil {
			log.Fatal(err)
		}
		if c.leaders == 0 {
			base = r
		}
		fmt.Printf("  %-26s %d cycles (%.3fx vs direct), %d invalidation msgs\n",
			c.label, r.Cycles, float64(base.Cycles)/float64(r.Cycles), r.Shootdowns)
	}

	fmt.Println("\nnow under the full TLB storm microbenchmark:")
	storm := &nocstar.StormConfig{
		ContextSwitchInterval: 40_000,
		PromoteDemoteInterval: 8_000,
		Pages:                 4096,
	}
	quiet, err := nocstar.Run(mk(cores/8, nil))
	if err != nil {
		log.Fatal(err)
	}
	stormy, err := nocstar.Run(mk(cores/8, storm))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  without storm: %d cycles\n", quiet.Cycles)
	fmt.Printf("  with storm:    %d cycles (%.1f%% slower, %d invalidations)\n",
		stormy.Cycles, 100*(float64(stormy.Cycles)/float64(quiet.Cycles)-1), stormy.Shootdowns)
}
