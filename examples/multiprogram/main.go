// Multiprogram: server consolidation — four different applications share
// one 32-core chip. Shared last-level TLBs donate unused capacity from
// light applications to heavy ones; this example measures aggregate
// throughput and whether any tenant is hurt (the paper's Fig. 18 axes).
package main

import (
	"fmt"
	"log"

	"nocstar"
)

func main() {
	const cores = 32
	names := []string{"redis", "mongodb", "nutch", "gups"}
	var apps []nocstar.App
	for _, n := range names {
		spec, ok := nocstar.WorkloadByName(n)
		if !ok {
			log.Fatalf("missing workload %s", n)
		}
		apps = append(apps, nocstar.App{Spec: spec, Threads: 8, HammerSlice: nocstar.HammerNone})
	}
	mk := func(org nocstar.Org) nocstar.Config {
		return nocstar.Config{
			Org:            org,
			Cores:          cores,
			Apps:           apps,
			InstrPerThread: 100_000,
			Seed:           11,
		}
	}

	baseline, err := nocstar.Run(mk(nocstar.Private))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4-app mix on %d cores: %v\n\n", cores, names)
	for _, o := range []struct {
		name string
		org  nocstar.Org
	}{
		{"monolithic", nocstar.MonolithicMesh},
		{"distributed", nocstar.DistributedMesh},
		{"NOCSTAR", nocstar.Nocstar},
	} {
		r, err := nocstar.Run(mk(o.org))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s overall throughput %.3fx, worst tenant %.3fx\n",
			o.name, r.ThroughputSpeedupOver(baseline), r.WorstAppSpeedupOver(baseline))
		for i, a := range r.Apps {
			fmt.Printf("             %-9s IPC %.3f -> %.3f (%.3fx)\n",
				a.Name, baseline.Apps[i].IPC, a.IPC, a.IPC/baseline.Apps[i].IPC)
		}
		fmt.Println()
	}
}
