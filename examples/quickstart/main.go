// Quickstart: compare a private L2 TLB baseline against NOCSTAR on one of
// the paper's workloads and print the headline numbers.
package main

import (
	"fmt"
	"log"

	"nocstar"
)

func main() {
	spec, ok := nocstar.WorkloadByName("canneal")
	if !ok {
		log.Fatal("workload suite missing canneal")
	}

	const cores = 16
	mk := func(org nocstar.Org) nocstar.Config {
		return nocstar.Config{
			Org:            org,
			Cores:          cores,
			Apps:           []nocstar.App{{Spec: spec, Threads: cores, HammerSlice: nocstar.HammerNone}},
			InstrPerThread: 150_000,
			Seed:           1,
		}
	}

	baseline, err := nocstar.Run(mk(nocstar.Private))
	if err != nil {
		log.Fatal(err)
	}
	result, err := nocstar.Run(mk(nocstar.Nocstar))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s on %d cores\n", spec.Name, cores)
	fmt.Printf("private L2 TLBs:  %d cycles, L2 miss rate %.1f%%\n",
		baseline.Cycles, 100*baseline.L2MissRate())
	fmt.Printf("NOCSTAR:          %d cycles, L2 miss rate %.1f%%\n",
		result.Cycles, 100*result.L2MissRate())
	fmt.Printf("speedup:          %.2fx\n", result.SpeedupOver(baseline))
	fmt.Printf("misses eliminated: %.1f%%\n", 100*result.MissesEliminatedVs(baseline))
	fmt.Printf("avg path setup:   %.2f cycles (%.1f%% contention-free)\n",
		result.Noc.AvgSetupCycles(), 100*result.Noc.NoContentionFraction())
}
